//! Deterministic chaos injection for the campaign's *own* pipeline.
//!
//! The paper injects errors into the DUT and asks whether the generator
//! finds them; this module turns the same discipline on the generator
//! itself. [`ChaosProbe`] rides the [`Probe`] hooks and — driven by a
//! seeded [`SplitMix64`], never by wall-clock or thread timing — injects
//! three fault kinds into chosen engine phases:
//!
//! * **panics** at `phase_enter`, exercising the per-phase
//!   `catch_unwind` isolation in [`crate::tg::TestGenerator::generate`]
//!   and the worker-level isolation in the campaign runner;
//! * **spurious backtracks** via [`Probe::spurious_backtrack`],
//!   exercising `CTRLJUST`'s budget handling under wasted work;
//! * **stalls** (deterministic busy-spins) at `phase_exit`, exercising
//!   scheduling-only mechanisms such as the campaign's wall-clock soft
//!   deadline without perturbing any recorded outcome.
//!
//! Every injection decision is a pure function of `(seed, error id,
//! site, visit count)`, so a chaos campaign remains byte-identical
//! across worker-thread counts — the property the robustness tests pin.
//!
//! Injected panic messages start with `"chaos("`; the first
//! [`ChaosProbe`] constructed in a process installs a panic hook that
//! swallows exactly those messages (all other panics are forwarded to
//! the previously installed hook), so a chaos campaign does not flood
//! stderr with hundreds of expected backtraces.

use crate::instrument::{Phase, Probe};
use crate::rng::SplitMix64;
use hltg_errors::BusSslError;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, Once};
use std::time::Duration;

/// What [`ChaosProbe`] injects, and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seed for the injection decisions (independent of the generator's
    /// own RNG seed).
    pub seed: u64,
    /// Probability, in permille, of panicking at a targeted
    /// `phase_enter`.
    pub panic_permille: u32,
    /// Probability, in permille, of forcing a spurious `CTRLJUST`
    /// backtrack at an implication pass.
    pub spurious_backtrack_permille: u32,
    /// Probability, in permille, of busy-spinning at a targeted
    /// `phase_exit` (wall-clock only; never changes an outcome).
    pub stall_permille: u32,
    /// Restrict panic/stall injection to one engine phase (`None`
    /// targets all three).
    pub phase: Option<Phase>,
    /// Restrict injection to errors of one pipe stage index (`None`
    /// targets every error).
    pub stage: Option<usize>,
    /// Inject only on the *first* visit of each `(error, phase)` site,
    /// so an escalated retry of the same error runs clean — the
    /// recovery scenario the retry tests pin.
    pub first_attempt_only: bool,
    /// Probability, in permille, of a torn (short) checkpoint append —
    /// a prefix of the line reaches the file, the rest is lost, as a
    /// kill mid-write would leave it. Exercises the
    /// [`crate::checkpoint::CheckpointLog`] recovery path.
    pub ckpt_torn_permille: u32,
    /// Probability, in permille, of a transient disk-full checkpoint
    /// append failure (nothing reaches the file).
    pub ckpt_full_permille: u32,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xC4A0_5C4A,
            panic_permille: 0,
            spurious_backtrack_permille: 0,
            stall_permille: 0,
            phase: None,
            stage: None,
            first_attempt_only: false,
            ckpt_torn_permille: 0,
            ckpt_full_permille: 0,
        }
    }
}

impl ChaosConfig {
    /// The checkpoint-append fault plan this config implies, if any.
    #[must_use]
    pub fn checkpoint_io(&self) -> Option<CheckpointIoChaos> {
        (self.ckpt_torn_permille > 0 || self.ckpt_full_permille > 0).then_some(CheckpointIoChaos {
            seed: self.seed,
            torn_permille: self.ckpt_torn_permille,
            full_permille: self.ckpt_full_permille,
        })
    }
}

/// A checkpoint-append fault, drawn by [`CheckpointIoChaos::roll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// A prefix of the line reaches the file; the rest is lost.
    TornWrite,
    /// The append fails outright with nothing persisted.
    DiskFull,
}

/// Deterministic fault plan for [`crate::checkpoint::CheckpointLog`]
/// appends. Each append draws once, pure in `(seed, append index)` —
/// never wall-clock or thread timing — so a faulty campaign reproduces
/// bit-for-bit. Because faults are injected *below* the log's
/// newline-terminate-and-retry recovery, outcomes and reports are
/// unaffected; only `io_recoveries()` and the skipped-line count of the
/// next open move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointIoChaos {
    /// Seed of the per-append draw.
    pub seed: u64,
    /// Probability, in permille, of a torn (short) write.
    pub torn_permille: u32,
    /// Probability, in permille, of a transient disk-full failure
    /// (drawn from the band just above the torn-write band).
    pub full_permille: u32,
}

impl CheckpointIoChaos {
    /// The fault injected on append number `append`, if any.
    #[must_use]
    pub fn roll(&self, append: u64) -> Option<IoFault> {
        let mut rng = SplitMix64::new(
            self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ append.rotate_left(17),
        );
        let draw = rng.next_u64() % 1000;
        if draw < u64::from(self.torn_permille) {
            Some(IoFault::TornWrite)
        } else if draw < u64::from(self.torn_permille) + u64::from(self.full_permille) {
            Some(IoFault::DiskFull)
        } else {
            None
        }
    }
}

/// Injection counters of one chaos campaign (all zero without chaos).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosTally {
    /// Panics injected at `phase_enter`.
    pub panics: u64,
    /// Spurious backtracks forced in `CTRLJUST`.
    pub spurious_backtracks: u64,
    /// Busy-spin stalls injected at `phase_exit`.
    pub stalls: u64,
}

/// A [`Probe`] that deterministically injects faults into the engines.
///
/// Compose it *last* in a [`crate::instrument::MultiProbe`], so the
/// observability probes have finished handling each hook before a chaos
/// panic unwinds through it.
#[derive(Debug)]
pub struct ChaosProbe {
    cfg: ChaosConfig,
    /// Error id → pipe stage index, learned at `error_begin`.
    stages: Mutex<HashMap<u64, usize>>,
    /// `(error id, site)` → visits so far; the visit count feeds the
    /// decision hash so repeated visits (variants, retry rounds) draw
    /// independently.
    visits: Mutex<HashMap<(u64, u64), u64>>,
    panics: AtomicU64,
    spurious: AtomicU64,
    stalls: AtomicU64,
}

/// Distinct site kinds for the decision hash.
const SITE_PHASE_ENTER: u64 = 1; // + phase index
const SITE_PHASE_EXIT: u64 = 11; // + phase index
const SITE_BACKTRACK: u64 = 21;

static SILENCE_HOOK: Once = Once::new();

/// Installs (once per process) a panic hook that swallows chaos-injected
/// panics — messages starting with `"chaos("` — and forwards everything
/// else to the previously installed hook.
fn silence_chaos_panics() {
    SILENCE_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .map(str::to_string)
                .or_else(|| payload.downcast_ref::<String>().cloned());
            if msg.as_deref().is_some_and(|m| m.starts_with("chaos(")) {
                return;
            }
            prev(info);
        }));
    });
}

impl ChaosProbe {
    /// A probe injecting per `cfg`. Also installs the process-wide
    /// chaos-panic silencer (idempotent).
    #[must_use]
    pub fn new(cfg: ChaosConfig) -> Self {
        if cfg.panic_permille > 0 {
            silence_chaos_panics();
        }
        ChaosProbe {
            cfg,
            stages: Mutex::new(HashMap::new()),
            visits: Mutex::new(HashMap::new()),
            panics: AtomicU64::new(0),
            spurious: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
        }
    }

    /// The injection counts so far.
    pub fn tally(&self) -> ChaosTally {
        ChaosTally {
            panics: self.panics.load(Ordering::Relaxed),
            spurious_backtracks: self.spurious.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
        }
    }

    /// Bumps and returns the previous visit count of `(id, site)`.
    fn visit(&self, id: u64, site: u64) -> u64 {
        let mut visits = self.visits.lock().expect("chaos visit map");
        let n = visits.entry((id, site)).or_insert(0);
        let prev = *n;
        *n += 1;
        prev
    }

    /// A uniform draw in `0..1000`, pure in `(seed, site, id, visit)`.
    fn roll(&self, site: u64, id: u64, visit: u64) -> u64 {
        let mut rng = SplitMix64::new(
            self.cfg
                .seed
                .wrapping_add(site.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                ^ id.rotate_left(24)
                ^ visit.rotate_left(48),
        );
        rng.next_u64() % 1000
    }

    /// Phase/stage targeting for panic and stall sites.
    fn targeted(&self, id: u64, p: Phase) -> bool {
        if self.cfg.phase.is_some_and(|want| want != p) {
            return false;
        }
        match self.cfg.stage {
            None => true,
            Some(want) => self
                .stages
                .lock()
                .expect("chaos stage map")
                .get(&id)
                .is_some_and(|&s| s == want),
        }
    }
}

impl Probe for ChaosProbe {
    fn wants_events(&self) -> bool {
        self.cfg.spurious_backtrack_permille > 0
    }

    fn error_begin(&self, error: &BusSslError) {
        self.stages
            .lock()
            .expect("chaos stage map")
            .insert(u64::from(error.id.0), error.stage.index());
    }

    fn phase_enter(&self, id: u64, p: Phase) {
        if self.cfg.panic_permille == 0 || !self.targeted(id, p) {
            return;
        }
        let site = SITE_PHASE_ENTER + p.index() as u64;
        let visit = self.visit(id, site);
        if self.cfg.first_attempt_only && visit > 0 {
            return;
        }
        if self.roll(site, id, visit) < u64::from(self.cfg.panic_permille) {
            self.panics.fetch_add(1, Ordering::Relaxed);
            // No chaos lock is held here: the guards above have dropped,
            // so the unwind cannot poison this probe.
            panic!(
                "chaos({}): injected panic for error {id}, visit {visit}",
                p.name()
            );
        }
    }

    fn phase_exit(&self, id: u64, p: Phase, _cost: u64, _d: Duration) {
        if self.cfg.stall_permille == 0 || !self.targeted(id, p) {
            return;
        }
        let site = SITE_PHASE_EXIT + p.index() as u64;
        let visit = self.visit(id, site);
        if self.cfg.first_attempt_only && visit > 0 {
            return;
        }
        let roll = self.roll(site, id, visit);
        if roll < u64::from(self.cfg.stall_permille) {
            self.stalls.fetch_add(1, Ordering::Relaxed);
            // Wall-clock only: a bounded busy-spin. Nothing downstream
            // observes it except schedulers (e.g. the soft deadline).
            for _ in 0..(roll + 1) * 20_000 {
                std::hint::spin_loop();
            }
        }
    }

    fn spurious_backtrack(&self, id: u64, _decisions: usize) -> bool {
        if self.cfg.spurious_backtrack_permille == 0 || !self.targeted(id, Phase::Ctrljust) {
            return false;
        }
        let visit = self.visit(id, SITE_BACKTRACK);
        if self.roll(SITE_BACKTRACK, id, visit) < u64::from(self.cfg.spurious_backtrack_permille) {
            self.spurious.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_functions_of_the_site() {
        let probe = ChaosProbe::new(ChaosConfig {
            seed: 7,
            ..ChaosConfig::default()
        });
        let twin = ChaosProbe::new(ChaosConfig {
            seed: 7,
            ..ChaosConfig::default()
        });
        for id in 0..64 {
            for visit in 0..4 {
                assert_eq!(probe.roll(SITE_BACKTRACK, id, visit), twin.roll(SITE_BACKTRACK, id, visit));
            }
        }
        // Different seeds draw differently somewhere.
        let other = ChaosProbe::new(ChaosConfig {
            seed: 8,
            ..ChaosConfig::default()
        });
        assert!((0..64).any(|id| probe.roll(SITE_BACKTRACK, id, 0) != other.roll(SITE_BACKTRACK, id, 0)));
    }

    #[test]
    fn visit_counts_advance_per_site() {
        let probe = ChaosProbe::new(ChaosConfig::default());
        assert_eq!(probe.visit(3, SITE_PHASE_ENTER), 0);
        assert_eq!(probe.visit(3, SITE_PHASE_ENTER), 1);
        assert_eq!(probe.visit(3, SITE_PHASE_EXIT), 0);
        assert_eq!(probe.visit(4, SITE_PHASE_ENTER), 0);
    }

    #[test]
    fn injected_panic_is_catchable_and_named() {
        let probe = ChaosProbe::new(ChaosConfig {
            panic_permille: 1000,
            ..ChaosConfig::default()
        });
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            probe.phase_enter(9, Phase::Dptrace);
        }))
        .expect_err("certain injection must panic");
        let msg = crate::tg::panic_payload(err.as_ref());
        assert!(msg.starts_with("chaos(dptrace)"), "got: {msg}");
        assert_eq!(probe.tally().panics, 1);
    }
}
