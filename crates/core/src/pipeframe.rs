//! The pipeframe organizational model (paper §IV).
//!
//! A conventional sequential ATPG iterates *timeframes*: each frame's
//! decision variables are the primary inputs plus every state bit
//! (`n₁ + p·n₂` variables, `p·n₂` of which need justification in the
//! previous frame). The pipeframe organization instead iterates
//! *pipeframes* — one per instruction flowing down the pipe — whose
//! decision variables are the primary inputs plus only the **tertiary**
//! signals (`n₁ + p·n₃`). For pipelined controllers with `n₃ ≪ n₂` the
//! search space shrinks accordingly; when every state bit feeds the next
//! stage (`n₃ = n₂`) the pipeframe model degenerates to the timeframe
//! model, as the paper notes.

use hltg_netlist::ctl::CtlNetlist;

/// Decision-variable accounting for one search organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameVars {
    /// Free decision variables per frame (primary inputs).
    pub free: usize,
    /// Decision variables per frame that require justification.
    pub justify: usize,
}

impl FrameVars {
    /// Total decision variables per frame.
    pub fn total(&self) -> usize {
        self.free + self.justify
    }
}

/// The §IV comparison for a controller: timeframe vs pipeframe decision
/// variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchSpaceAnalysis {
    /// n₁: primary inputs.
    pub n1: usize,
    /// p·n₂: total state bits.
    pub n2_total: usize,
    /// p·n₃: total tertiary signals.
    pub n3_total: usize,
    /// Per-frame variables in the timeframe organization.
    pub timeframe: FrameVars,
    /// Per-frame variables in the pipeframe organization.
    pub pipeframe: FrameVars,
}

impl SearchSpaceAnalysis {
    /// Computes the analysis from a controller netlist census.
    pub fn of(ctl: &CtlNetlist) -> Self {
        let c = ctl.census();
        SearchSpaceAnalysis {
            n1: c.cpi,
            n2_total: c.state_bits,
            n3_total: c.tertiary,
            timeframe: FrameVars {
                free: c.cpi,
                justify: c.state_bits,
            },
            pipeframe: FrameVars {
                free: c.cpi,
                justify: c.tertiary,
            },
        }
    }

    /// Ratio of justification variables, timeframe / pipeframe (the
    /// headline reduction; `None` when there are no tertiary signals).
    pub fn justify_reduction(&self) -> Option<f64> {
        if self.n3_total == 0 {
            None
        } else {
            Some(self.n2_total as f64 / self.n3_total as f64)
        }
    }

    /// `true` when the pipeframe organization degenerates to the
    /// timeframe organization (every state bit is tertiary).
    pub fn is_degenerate(&self) -> bool {
        self.n3_total >= self.n2_total
    }

    /// Log₂ of the per-frame assignment-space-size ratio
    /// (timeframe / pipeframe): each justification variable doubles the
    /// space.
    pub fn log2_space_ratio(&self) -> i64 {
        self.timeframe.justify as i64 - self.pipeframe.justify as i64
    }
}

/// A window of consecutive pipeframes considered simultaneously during the
/// search (paper Figure 2c/2d: a pipeframe interacts with neighbours via
/// shared primary inputs and the tertiary signals feeding it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipeframeWindow {
    /// Index of the first pipeframe (instruction) in the window.
    pub first: i32,
    /// Number of pipeframes in the window.
    pub len: usize,
    /// Pipeline depth.
    pub stages: usize,
}

impl PipeframeWindow {
    /// The clock cycle at which pipeframe `p` occupies `stage` (no stalls).
    pub fn cycle_of(&self, pipeframe: i32, stage: usize) -> i32 {
        pipeframe + stage as i32
    }

    /// The pipeframe occupying `stage` at clock `cycle` (no stalls).
    pub fn frame_at(&self, cycle: i32, stage: usize) -> i32 {
        cycle - stage as i32
    }

    /// Number of clock cycles the window spans.
    pub fn cycles(&self) -> usize {
        self.len + self.stages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hltg_netlist::ctl::CtlBuilder;
    use hltg_netlist::Stage;

    fn controller(state_bits: usize, tertiary_of_those: usize) -> CtlNetlist {
        let mut b = CtlBuilder::new("c");
        b.set_stage(Stage::new(0));
        let i = b.cpi("i0");
        let mut prev = i;
        let mut ffs = Vec::new();
        for k in 0..state_bits {
            let q = b.ff(format!("q{k}"), prev, false);
            ffs.push(q);
            prev = q;
        }
        for &q in ffs.iter().take(tertiary_of_those) {
            b.mark_tertiary(q);
        }
        b.mark_cpo(prev);
        b.finish().unwrap()
    }

    #[test]
    fn reduction_matches_census() {
        let ctl = controller(12, 3);
        let a = SearchSpaceAnalysis::of(&ctl);
        assert_eq!(a.n1, 1);
        assert_eq!(a.n2_total, 12);
        assert_eq!(a.n3_total, 3);
        assert_eq!(a.timeframe.total(), 13);
        assert_eq!(a.pipeframe.total(), 4);
        assert_eq!(a.justify_reduction(), Some(4.0));
        assert_eq!(a.log2_space_ratio(), 9);
        assert!(!a.is_degenerate());
    }

    #[test]
    fn degenerate_case() {
        // Every CSO feeds the next stage: all state is tertiary and the
        // pipeframe approach reduces to the timeframe approach (§IV).
        let ctl = controller(8, 8);
        let a = SearchSpaceAnalysis::of(&ctl);
        assert!(a.is_degenerate());
        assert_eq!(a.log2_space_ratio(), 0);
    }

    #[test]
    fn window_cycle_mapping() {
        let w = PipeframeWindow {
            first: 0,
            len: 4,
            stages: 5,
        };
        // Pipeframe 2 is in EX (stage 2) at cycle 4.
        assert_eq!(w.cycle_of(2, 2), 4);
        assert_eq!(w.frame_at(4, 2), 2);
        assert_eq!(w.cycles(), 9);
    }

    #[test]
    fn dlx_controller_reduction() {
        let dlx = hltg_dlx::DlxDesign::build();
        let a = SearchSpaceAnalysis::of(&dlx.design.ctl);
        // The paper reports 96 -> 43 for its DLX; ours is 44 -> 8. The
        // structural claim (n3 << n2) must hold.
        assert!(a.justify_reduction().unwrap() > 2.0);
        assert!(!a.is_degenerate());
    }
}
