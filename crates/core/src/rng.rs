//! Minimal deterministic PRNG for the whole workspace.
//!
//! The offline build environment cannot resolve external crates, so the
//! workspace carries its own pseudo-random source instead of `rand`: a
//! [SplitMix64](https://prng.di.unimi.it/splitmix64.c) generator. It is
//! seedable, fast, passes BigCrush when used as a 64-bit stream, and —
//! most importantly for the campaign engine — *fully deterministic*: a
//! given seed produces the same stream on every platform and thread, so
//! per-error generation is reproducible regardless of which worker runs
//! it.
//!
//! Everything random in the repository (relaxation restarts, randomized
//! property tests, fuzz-style co-simulation) draws from this type.

/// A seedable SplitMix64 pseudo-random generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Alias for [`SplitMix64::new`], mirroring the `rand` naming the
    /// workspace used before it became hermetic.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self::new(seed)
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform draw from the half-open range `lo..hi` (`lo < hi`).
    ///
    /// Uses Lemire-style multiply-shift reduction; the slight modulo bias
    /// of small ranges over a 64-bit stream is far below anything the
    /// heuristics or tests can observe.
    pub fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        debug_assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        range.start + ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// A uniform draw from the half-open signed range `lo..hi` (`lo < hi`).
    pub fn gen_range_i64(&mut self, range: std::ops::Range<i64>) -> i64 {
        debug_assert!(range.start < range.end, "empty range");
        let span = range.end.wrapping_sub(range.start) as u64;
        range
            .start
            .wrapping_add(self.gen_range(0..span) as i64)
    }

    /// A uniform draw from `0..hi` as `usize` (`hi > 0`).
    pub fn gen_index(&mut self, hi: usize) -> usize {
        self.gen_range(0..hi as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // Compare against the top 53 bits for an exact dyadic threshold.
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = SplitMix64::new(0xDEAD_BEEF);
        let mut b = SplitMix64::seed_from_u64(0xDEAD_BEEF);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_reference_values() {
        // First outputs of SplitMix64 seeded with 1234567, per the
        // reference implementation.
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut r = SplitMix64::new(42);
        for _ in 0..1000 {
            let v = r.gen_range(10..17);
            assert!((10..17).contains(&v));
            let s = r.gen_range_i64(-5..5);
            assert!((-5..5).contains(&s));
            let i = r.gen_index(3);
            assert!(i < 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SplitMix64::new(7);
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
        let heads = (0..4096).filter(|_| r.gen_bool(0.5)).count();
        assert!((1600..2500).contains(&heads), "heads {heads}");
    }
}
