//! Campaign flight recorder: a deterministic metrics timeline.
//!
//! [`FlightRecorder`] is a [`Probe`] that turns one campaign run into a
//! [`MetricsTimeline`]: one `rec` line per covered error (the coverage
//! analytics substrate — stage, error class, outcome, latency, the
//! fingerprint of the detecting test, and the engine work the generation
//! cost), `snap` lines sampled on a deterministic event-count clock, and a
//! `summary` carrying the per-stage × per-error-class detection matrix and
//! the detection-latency histogram the `campaign_report` bin renders.
//!
//! Determinism contract (same discipline as [`crate::trace::Tracer`]): the
//! timeline is assembled in [`FlightRecorder::finish`] from the campaign's
//! merged `ErrorRecord` list, which already replays sequential covering
//! semantics in enumeration order — so the *clock* is "errors completed in
//! enumeration order", never wall time or thread interleaving, and
//! [`MetricsTimeline::to_jsonl_deterministic`] is byte-for-byte identical
//! for any worker-thread count. Physically thread-dependent quantities —
//! wall-clock (`ns` keys) and the live counter samples (worker pre-screens
//! and per-worker memos fire on a thread-dependent schedule) — appear only
//! in the full [`MetricsTimeline::to_jsonl`] emission.
//!
//! JSONL schema (one object per line; `DESIGN.md` §6f documents examples):
//!
//! * `{"ev": "meta", "stream": "metrics", ...}` — one header line.
//! * `{"ev": "rec", ...}` — one line per enumerated error, in enumeration
//!   order. Generated errors (`"by_simulation": false`) carry an `"engine"`
//!   object with the work their generation cost; screened errors do not
//!   (no generation ran for them under sequential semantics).
//! * `{"ev": "snap", "at": n, ...}` — cumulative totals after every
//!   `sample_every` errors (and once at the end). Full emission adds
//!   `"ns"` and a `"counters"` object sampled live at the same event count.
//! * `{"ev": "summary", ...}` — totals, the `"matrix"` of
//!   `stage × class → errors/detected`, the detection-latency histogram
//!   and per-test efficiency aggregates.

use crate::campaign::{test_fingerprint, ErrorRecord};
use crate::instrument::{
    json_escape, json_f64, Counter, Phase, Probe, SpanEnd, COUNTERS, PHASES,
};
use crate::tg::Outcome;
use crate::trace::LogHistogram;
use hltg_errors::BusSslError;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

const N_PHASES: usize = PHASES.len();
const N_COUNTERS: usize = COUNTERS.len();
/// In-flight cell shards, sized like the tracer's: one worker owns an
/// error at a time, so the per-event lock is effectively uncontended.
const SHARDS: usize = 32;

/// Deterministic engine work accumulated while generating one error.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineWork {
    /// Path-selection variants attempted.
    pub variants: u64,
    /// Counterexample-guided STS refinements.
    pub refinements: u64,
    /// CTRLJUST decisions.
    pub decisions: u64,
    /// CTRLJUST backtracks.
    pub backtracks: u64,
    /// DPRELAX iterations.
    pub relax_iterations: u64,
    /// DPRELAX random-restart perturbations.
    pub perturbations: u64,
    /// Deterministic work units per phase, in [`PHASES`] order.
    pub cost: [u64; N_PHASES],
    /// Engine calls per phase, in [`PHASES`] order.
    pub calls: [u64; N_PHASES],
    /// Wall-clock from `error_begin` to `error_end` (thread- and
    /// machine-dependent; full emission only).
    pub wall_ns: u64,
}

/// In-flight per-error accumulation; becomes [`EngineWork`] at `error_end`.
#[derive(Debug)]
struct FlightCell {
    work: EngineWork,
    opened: Instant,
}

impl FlightCell {
    fn new() -> Self {
        FlightCell {
            work: EngineWork::default(),
            opened: Instant::now(),
        }
    }
}

/// One live counter sample, captured when the completion count crossed a
/// multiple of the sampling interval. Values race with in-flight workers
/// and are therefore excluded from the deterministic emission.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveSample {
    /// Errors completed (generated + screened) when the sample was taken.
    pub at: usize,
    /// Wall-clock nanoseconds since the recorder was created.
    pub ns: u64,
    /// Counter values in [`COUNTERS`] order.
    pub counts: [u64; N_COUNTERS],
}

/// A [`Probe`] recording the metrics timeline of one campaign run.
///
/// Share one recorder across the campaign workers (it is `Sync`); after
/// the run, [`FlightRecorder::finish`] merges against the deterministic
/// `ErrorRecord` list into a [`MetricsTimeline`].
#[derive(Debug)]
pub struct FlightRecorder {
    sample_every: usize,
    shards: Vec<Mutex<HashMap<u64, FlightCell>>>,
    done: Mutex<Vec<(u64, EngineWork)>>,
    completed: AtomicUsize,
    counts: [AtomicU64; N_COUNTERS],
    live: Mutex<Vec<LiveSample>>,
    started: Instant,
}

impl FlightRecorder {
    /// A recorder sampling a snapshot every `sample_every` completed
    /// errors (clamped to at least 1).
    #[must_use]
    pub fn new(sample_every: usize) -> Self {
        FlightRecorder {
            sample_every: sample_every.max(1),
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            done: Mutex::new(Vec::new()),
            completed: AtomicUsize::new(0),
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            live: Mutex::new(Vec::new()),
            started: Instant::now(),
        }
    }

    fn with_cell(&self, id: u64, f: impl FnOnce(&mut FlightCell)) {
        let mut shard = self.shards[(id as usize) % SHARDS]
            .lock()
            .expect("flight shard lock");
        let cell = shard.entry(id).or_insert_with(FlightCell::new);
        f(cell);
    }

    /// Bumps the completion clock; on crossing a sampling boundary,
    /// captures the live counters (full-emission data only).
    fn tick(&self) {
        let done = self.completed.fetch_add(1, Ordering::Relaxed) + 1;
        if !done.is_multiple_of(self.sample_every) {
            return;
        }
        let mut counts = [0u64; N_COUNTERS];
        for (i, c) in self.counts.iter().enumerate() {
            counts[i] = c.load(Ordering::Relaxed);
        }
        self.live.lock().expect("flight live lock").push(LiveSample {
            at: done,
            ns: self.started.elapsed().as_nanos() as u64,
            counts,
        });
    }

    /// Closes the recorder against the campaign's merged record list
    /// (enumeration order), producing the deterministic timeline.
    #[must_use]
    pub fn finish(self, records: &[ErrorRecord], design: &str) -> MetricsTimeline {
        let mut by_id: HashMap<u64, EngineWork> = self
            .done
            .into_inner()
            .expect("flight done lock")
            .into_iter()
            .collect(); // later entries overwrite earlier: retries win
        let wall_ns = self.started.elapsed().as_nanos() as u64;
        let mut recs = Vec::with_capacity(records.len());
        for r in records {
            // Engine work joins only for generated records: a worker may
            // speculatively generate an error the sequential merge then
            // screens, and keeping that cell would differ by thread count.
            let engine = if r.by_simulation {
                None
            } else {
                by_id.remove(&u64::from(r.error.id.0))
            };
            recs.push(MetricRec::from_record(r, engine));
        }
        MetricsTimeline::assemble(
            design.to_string(),
            self.sample_every,
            recs,
            self.live.into_inner().expect("flight live lock"),
            wall_ns,
        )
    }
}

impl Probe for FlightRecorder {
    fn wants_events(&self) -> bool {
        true
    }

    fn add(&self, c: Counter, n: u64) {
        // Only feeds the live samples; Counter ordering mirrors COUNTERS.
        let idx = COUNTERS
            .iter()
            .position(|&k| k == c)
            .expect("counter is enumerated");
        self.counts[idx].fetch_add(n, Ordering::Relaxed);
    }

    fn error_begin(&self, error: &BusSslError) {
        let id = u64::from(error.id.0);
        let mut shard = self.shards[(id as usize) % SHARDS]
            .lock()
            .expect("flight shard lock");
        // Insert replaces: a regeneration (retry round, merge-pass replay
        // of a lost slot) restarts the cell, so the last generation wins —
        // matching the record the campaign merge keeps.
        shard.insert(id, FlightCell::new());
    }

    fn error_end(&self, id: u64, _end: SpanEnd) {
        let cell = {
            let mut shard = self.shards[(id as usize) % SHARDS]
                .lock()
                .expect("flight shard lock");
            shard.remove(&id).unwrap_or_else(FlightCell::new)
        };
        let mut work = cell.work;
        work.wall_ns = cell.opened.elapsed().as_nanos() as u64;
        self.done.lock().expect("flight done lock").push((id, work));
        self.tick();
    }

    fn error_screened(&self, _id: u64, _detected: bool) {
        self.tick();
    }

    fn variant_begin(&self, id: u64, variant: usize) {
        self.with_cell(id, |c| {
            c.work.variants = c.work.variants.max(variant as u64 + 1);
        });
    }

    fn phase_exit(&self, id: u64, p: Phase, cost: u64, _d: std::time::Duration) {
        self.with_cell(id, |c| {
            c.work.cost[p.index()] += cost;
            c.work.calls[p.index()] += 1;
        });
    }

    fn refinement(&self, id: u64, _frame: usize) {
        self.with_cell(id, |c| c.work.refinements += 1);
    }

    fn decision(&self, id: u64, _frame: usize, _value: bool) {
        self.with_cell(id, |c| c.work.decisions += 1);
    }

    fn backtrack(&self, id: u64, _frame: usize, _depth: usize) {
        self.with_cell(id, |c| c.work.backtracks += 1);
    }

    fn relax_step(&self, id: u64, _iteration: usize, _activated: bool) {
        self.with_cell(id, |c| c.work.relax_iterations += 1);
    }

    fn relax_perturb(&self, id: u64, _iteration: usize) {
        self.with_cell(id, |c| c.work.perturbations += 1);
    }
}

/// One error's line in the metrics timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricRec {
    /// Error id.
    pub id: u64,
    /// Pipe-stage index of the error site.
    pub stage: usize,
    /// Error site, `net_name[bit]:sa{0|1}`.
    pub site: String,
    /// Error class along the polarity axis: `sa0` or `sa1`.
    pub class: &'static str,
    /// `true` when a detecting test covers this error.
    pub detected: bool,
    /// `true` when the untestability prover certified no test exists.
    pub proven_untestable: bool,
    /// Abort-reason name (`""` when detected; the proof-kind name when
    /// proven untestable).
    pub reason: &'static str,
    /// Structurally redundant (collapse-class alias of a kept error).
    pub redundant: bool,
    /// Covered by simulating an earlier test instead of generation.
    pub by_simulation: bool,
    /// Retry round that produced the outcome (0 = first pass).
    pub round: u32,
    /// Cycle of first observable divergence (0 when aborted).
    pub detected_cycle: usize,
    /// Length of the covering test (0 when aborted).
    pub test_length: usize,
    /// FNV-1a fingerprint of the covering test (None when aborted).
    pub test_fp: Option<u64>,
    /// Wall-clock seconds the campaign charged to this error
    /// (thread-dependent; full emission only).
    pub seconds: f64,
    /// Engine work, present for generated records only.
    pub engine: Option<EngineWork>,
}

impl MetricRec {
    fn from_record(r: &ErrorRecord, engine: Option<EngineWork>) -> Self {
        let (detected, proven, reason, detected_cycle, test_length, test_fp) = match &r.outcome {
            Outcome::Detected(tc) => (
                true,
                false,
                "",
                tc.detected_cycle,
                tc.length,
                Some(test_fingerprint(tc)),
            ),
            Outcome::Aborted { reason, .. } => (false, false, reason.name(), 0, 0, None),
            Outcome::ProvenUntestable(proof) => (false, true, proof.kind.name(), 0, 0, None),
        };
        MetricRec {
            id: u64::from(r.error.id.0),
            stage: r.error.stage.index(),
            site: format!(
                "{}[{}]:sa{}",
                r.error.net_name,
                r.error.bit,
                u8::from(r.error.polarity == hltg_sim::Polarity::StuckAt1)
            ),
            class: if r.error.polarity == hltg_sim::Polarity::StuckAt1 {
                "sa1"
            } else {
                "sa0"
            },
            detected,
            proven_untestable: proven,
            reason,
            redundant: r.redundant,
            by_simulation: r.by_simulation,
            round: r.round,
            detected_cycle,
            test_length,
            test_fp,
            seconds: r.seconds,
            engine,
        }
    }
}

/// One deterministic snapshot of cumulative totals on the event-count
/// clock ("after `at` errors in enumeration order").
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricSnap {
    /// Errors accounted so far (the clock value).
    pub at: usize,
    /// Errors that ran dedicated generation.
    pub generated: usize,
    /// Errors covered by simulating an earlier test.
    pub screened: usize,
    /// Detections so far.
    pub detected: usize,
    /// Aborts so far (proven-untestable errors counted separately).
    pub aborted: usize,
    /// Prover-certified untestable errors so far.
    pub proven_untestable: usize,
    /// Records produced by a retry round (round > 0).
    pub retried: usize,
    /// Structurally redundant errors so far.
    pub redundant: usize,
    /// Detected / accounted, in percent.
    pub coverage_pct: f64,
    /// Cumulative CTRLJUST decisions across generated errors.
    pub decisions: u64,
    /// Cumulative CTRLJUST backtracks across generated errors.
    pub backtracks: u64,
    /// Cumulative deterministic phase cost, in [`PHASES`] order.
    pub cost: [u64; N_PHASES],
    /// Live counter sample at the same clock value, when one was captured
    /// (thread-dependent; full emission only).
    pub live: Option<LiveSample>,
}

/// One cell of the per-stage × per-error-class detection matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixCell {
    /// Pipe-stage index.
    pub stage: usize,
    /// `sa0` or `sa1`.
    pub class: &'static str,
    /// Errors enumerated in this cell.
    pub errors: usize,
    /// Detections among them.
    pub detected: usize,
}

/// The merged, deterministic metrics result of one campaign run.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsTimeline {
    /// Design (backend) name.
    pub design: String,
    /// Snapshot sampling interval, in completed errors.
    pub sample_every: usize,
    /// One record per enumerated error, in enumeration order.
    pub recs: Vec<MetricRec>,
    /// Deterministic snapshots on the event-count clock.
    pub snaps: Vec<MetricSnap>,
    /// Detection matrix cells, ordered by (stage, class).
    pub matrix: Vec<MatrixCell>,
    /// Detection latency (cycles to first observable divergence) over
    /// generated detections.
    pub latency_hist: LogHistogram,
    /// Distinct covering tests among generated detections.
    pub test_set_size: usize,
    /// Total wall-clock nanoseconds (full emission only).
    pub wall_ns: u64,
}

impl MetricsTimeline {
    fn assemble(
        design: String,
        sample_every: usize,
        recs: Vec<MetricRec>,
        live: Vec<LiveSample>,
        wall_ns: u64,
    ) -> Self {
        let mut snaps = Vec::new();
        let mut cum = MetricSnap::default();
        let mut live_iter = live.into_iter().peekable();
        let mut matrix: BTreeMap<(usize, &'static str), (usize, usize)> = BTreeMap::new();
        let mut latency_hist = LogHistogram::new();
        let mut tests: BTreeMap<u64, usize> = BTreeMap::new();
        for (i, r) in recs.iter().enumerate() {
            cum.at = i + 1;
            if r.by_simulation {
                cum.screened += 1;
            } else {
                cum.generated += 1;
            }
            if r.detected {
                cum.detected += 1;
            } else if r.proven_untestable {
                cum.proven_untestable += 1;
            } else {
                cum.aborted += 1;
            }
            if r.round > 0 {
                cum.retried += 1;
            }
            if r.redundant {
                cum.redundant += 1;
            }
            if let Some(e) = &r.engine {
                cum.decisions += e.decisions;
                cum.backtracks += e.backtracks;
                for p in 0..N_PHASES {
                    cum.cost[p] += e.cost[p];
                }
            }
            let cell = matrix.entry((r.stage, r.class)).or_insert((0, 0));
            cell.0 += 1;
            cell.1 += usize::from(r.detected);
            if !r.by_simulation {
                if let Some(fp) = r.test_fp {
                    latency_hist.record(r.detected_cycle as u64);
                    *tests.entry(fp).or_insert(0) += 1;
                }
            }
            if cum.at.is_multiple_of(sample_every) || i + 1 == recs.len() {
                cum.coverage_pct = 100.0 * cum.detected as f64 / cum.at as f64;
                let mut snap = cum.clone();
                // The live clock counts completions (thread-dependent
                // schedule), the snapshot clock counts merged records;
                // both tick every `sample_every`, so samples join by
                // clock value where one landed.
                while let Some(s) = live_iter.peek() {
                    if s.at < snap.at {
                        live_iter.next();
                    } else {
                        break;
                    }
                }
                if live_iter.peek().is_some_and(|s| s.at == snap.at) {
                    snap.live = live_iter.next();
                }
                snaps.push(snap);
            }
        }
        MetricsTimeline {
            design,
            sample_every,
            recs,
            snaps,
            matrix: matrix
                .into_iter()
                .map(|((stage, class), (errors, detected))| MatrixCell {
                    stage,
                    class,
                    errors,
                    detected,
                })
                .collect(),
            latency_hist,
            test_set_size: tests.len(),
            wall_ns,
        }
    }

    /// Detections across all records.
    #[must_use]
    pub fn detected(&self) -> usize {
        self.recs.iter().filter(|r| r.detected).count()
    }

    /// The full JSONL timeline, wall-clock and live counters included.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        self.emit(true)
    }

    /// The deterministic JSONL timeline: identical lines minus every
    /// thread-dependent field (`ns` keys, per-record `seconds`, live
    /// `counters` objects). Byte-for-byte identical for any worker-thread
    /// count.
    #[must_use]
    pub fn to_jsonl_deterministic(&self) -> String {
        self.emit(false)
    }

    fn emit(&self, timing: bool) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"ev\": \"meta\", \"version\": 1, \"stream\": \"metrics\", \
             \"design\": \"{}\", \"errors\": {}, \"sample_every\": {}}}",
            json_escape(&self.design),
            self.recs.len(),
            self.sample_every
        );
        for r in &self.recs {
            let _ = write!(
                out,
                "{{\"ev\": \"rec\", \"error\": {}, \"stage\": {}, \"site\": \"{}\", \
                 \"class\": \"{}\", \"outcome\": \"{}\", \"reason\": \"{}\", \
                 \"redundant\": {}, \"by_simulation\": {}, \"round\": {}, \
                 \"detected_cycle\": {}, \"test_length\": {}",
                r.id,
                r.stage,
                json_escape(&r.site),
                r.class,
                if r.detected {
                    "detected"
                } else if r.proven_untestable {
                    "proven_untestable"
                } else {
                    "aborted"
                },
                json_escape(r.reason),
                r.redundant,
                r.by_simulation,
                r.round,
                r.detected_cycle,
                r.test_length,
            );
            if let Some(fp) = r.test_fp {
                let _ = write!(out, ", \"test_fp\": \"{fp:016x}\"");
            }
            if let Some(e) = &r.engine {
                let _ = write!(
                    out,
                    ", \"engine\": {{\"variants\": {}, \"refinements\": {}, \
                     \"decisions\": {}, \"backtracks\": {}, \
                     \"relax_iterations\": {}, \"perturbations\": {}",
                    e.variants,
                    e.refinements,
                    e.decisions,
                    e.backtracks,
                    e.relax_iterations,
                    e.perturbations
                );
                out.push_str(", \"phases\": {");
                for (i, p) in PHASES.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(
                        out,
                        "\"{}\": {{\"calls\": {}, \"cost\": {}}}",
                        p.name(),
                        e.calls[i],
                        e.cost[i]
                    );
                }
                out.push('}');
                if timing {
                    let _ = write!(out, ", \"ns\": {}", e.wall_ns);
                }
                out.push('}');
            }
            if timing {
                let _ = write!(out, ", \"ns\": {}", (r.seconds * 1e9) as u64);
            }
            out.push_str("}\n");
        }
        for s in &self.snaps {
            let _ = write!(
                out,
                "{{\"ev\": \"snap\", \"at\": {}, \"generated\": {}, \"screened\": {}, \
                 \"detected\": {}, \"aborted\": {}, \"proven_untestable\": {}, \
                 \"retried\": {}, \
                 \"redundant\": {}, \"coverage_pct\": {}, \"decisions\": {}, \
                 \"backtracks\": {}",
                s.at,
                s.generated,
                s.screened,
                s.detected,
                s.aborted,
                s.proven_untestable,
                s.retried,
                s.redundant,
                json_f64(s.coverage_pct),
                s.decisions,
                s.backtracks,
            );
            out.push_str(", \"cost\": {");
            for (i, p) in PHASES.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{}\": {}", p.name(), s.cost[i]);
            }
            out.push('}');
            if timing {
                if let Some(live) = &s.live {
                    let _ = write!(out, ", \"ns\": {}", live.ns);
                    out.push_str(", \"counters\": {");
                    let mut first = true;
                    for (i, &c) in COUNTERS.iter().enumerate() {
                        if live.counts[i] == 0 {
                            continue;
                        }
                        if !first {
                            out.push_str(", ");
                        }
                        first = false;
                        let _ = write!(out, "\"{}\": {}", c.name(), live.counts[i]);
                    }
                    out.push('}');
                }
            }
            out.push_str("}\n");
        }
        let generated = self.recs.iter().filter(|r| !r.by_simulation).count();
        let retried = self.recs.iter().filter(|r| r.round > 0).count();
        let proven = self.recs.iter().filter(|r| r.proven_untestable).count();
        let _ = write!(
            out,
            "{{\"ev\": \"summary\", \"errors\": {}, \"generated\": {}, \
             \"screened\": {}, \"detected\": {}, \"aborted\": {}, \
             \"proven_untestable\": {}, \
             \"retried\": {}, \"coverage_pct\": {}, \"test_set_size\": {}",
            self.recs.len(),
            generated,
            self.recs.len() - generated,
            self.detected(),
            self.recs.len() - self.detected() - proven,
            proven,
            retried,
            json_f64(if self.recs.is_empty() {
                0.0
            } else {
                100.0 * self.detected() as f64 / self.recs.len() as f64
            }),
            self.test_set_size,
        );
        out.push_str(", \"matrix\": [");
        for (i, c) in self.matrix.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"stage\": {}, \"class\": \"{}\", \"errors\": {}, \"detected\": {}}}",
                c.stage, c.class, c.errors, c.detected
            );
        }
        out.push(']');
        let _ = write!(out, ", \"latency_hist\": {}", self.latency_hist.to_json());
        if timing {
            let _ = write!(out, ", \"ns\": {}", self.wall_ns);
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_accumulates_engine_work_per_error() {
        let rec = FlightRecorder::new(4);
        rec.with_cell(7, |c| c.work.decisions += 3);
        rec.with_cell(7, |c| c.work.cost[0] += 10);
        let mut got = EngineWork::default();
        rec.with_cell(7, |c| got = c.work.clone());
        assert_eq!(got.decisions, 3);
        assert_eq!(got.cost[0], 10);
    }

    #[test]
    fn empty_timeline_emits_meta_and_summary_only() {
        let rec = FlightRecorder::new(8);
        let tl = rec.finish(&[], "dlx");
        let det = tl.to_jsonl_deterministic();
        assert!(det.starts_with("{\"ev\": \"meta\""));
        assert!(det.contains("\"ev\": \"summary\""));
        assert!(!det.contains("\"ev\": \"rec\""));
        assert!(!det.contains("\"ns\":"));
        assert_eq!(tl.test_set_size, 0);
        // Full emission of the same timeline carries the wall clock.
        assert!(tl.to_jsonl().contains("\"ns\":"));
    }
}
