//! Three-valued evaluation of the controller unrolled over clock frames.
//!
//! `CTRLJUST` reasons about the gate-level controller across a window of
//! clock cycles starting at the reset state. The [`Unrolled`] model holds a
//! [`V3`] value for every controller net at every frame; primary and status
//! inputs are *free* variables assigned by the search, everything else is
//! implied by forward three-valued evaluation. Flip-flops take their frame-0
//! values from their reset specification, so justification back to the reset
//! state — the paper's termination condition — holds by construction.

use hltg_netlist::ctl::{CtlInputKind, CtlNetId, CtlNetlist, CtlOp};
use hltg_sim::tv::{eval_gate, V3};

/// Computes a topological order of the combinational controller nets
/// (inputs and constants first; flip-flops excluded — they are sources).
pub fn comb_topo_order(nl: &CtlNetlist) -> Vec<CtlNetId> {
    let n = nl.net_count();
    let mut indeg = vec![0usize; n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (id, net) in nl.iter_nets() {
        if net.op.is_ff() {
            continue;
        }
        for &i in &net.inputs {
            if !nl.net(i).op.is_ff() {
                succs[i.0 as usize].push(id.0 as usize);
                indeg[id.0 as usize] += 1;
            }
        }
    }
    let mut queue: Vec<usize> = (0..n)
        .filter(|&i| !nl.nets()[i].op.is_ff() && indeg[i] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = queue.pop() {
        order.push(CtlNetId(i as u32));
        for &s in &succs[i] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                queue.push(CtlNetId(s as u32).0 as usize);
            }
        }
    }
    debug_assert_eq!(
        order.len(),
        nl.nets().iter().filter(|g| !g.op.is_ff()).count(),
        "controller validated acyclic"
    );
    order
}

/// The controller unrolled over `frames` clock cycles.
///
/// # Examples
///
/// ```
/// use hltg_core::unroll::Unrolled;
/// use hltg_sim::V3;
/// let dlx = hltg_dlx::DlxDesign::build();
/// let mut u = Unrolled::new(&dlx.design.ctl, 8);
/// u.propagate();
/// // With all inputs unknown, the squash signal is unknown too...
/// assert_eq!(u.value(3, dlx.ctl.squash), V3::X);
/// // ...but frame 0 starts from reset: the EX-stage branch flag is 0,
/// // so no squash can occur in frame 0.
/// assert_eq!(u.value(0, dlx.ctl.squash), V3::Zero);
/// ```
#[derive(Debug, Clone)]
pub struct Unrolled<'d> {
    nl: &'d CtlNetlist,
    frames: usize,
    topo: Vec<CtlNetId>,
    ffs: Vec<CtlNetId>,
    /// Implied value of net `n` at frame `f`: `vals[f * n_nets + n]`.
    vals: Vec<V3>,
    /// Free-variable assignments for input nets, same indexing.
    free: Vec<V3>,
}

impl<'d> Unrolled<'d> {
    /// Creates an unrolled model with all free inputs unassigned.
    pub fn new(nl: &'d CtlNetlist, frames: usize) -> Self {
        let topo = comb_topo_order(nl);
        let ffs = nl.ff_nets().collect();
        let n = nl.net_count();
        Unrolled {
            nl,
            frames,
            topo,
            ffs,
            vals: vec![V3::X; frames * n],
            free: vec![V3::X; frames * n],
        }
    }

    /// Number of frames.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &'d CtlNetlist {
        self.nl
    }

    fn idx(&self, frame: usize, net: CtlNetId) -> usize {
        debug_assert!(frame < self.frames);
        frame * self.nl.net_count() + net.0 as usize
    }

    /// Assigns a free input (CPI or STS) at a frame.
    ///
    /// # Panics
    ///
    /// Panics if `net` is not an input.
    pub fn assign(&mut self, frame: usize, net: CtlNetId, value: bool) {
        assert!(
            matches!(self.nl.net(net).op, CtlOp::Input(_)),
            "assign on non-input `{}`",
            self.nl.net(net).name
        );
        let i = self.idx(frame, net);
        self.free[i] = V3::from_bool(value);
    }

    /// Removes a free-input assignment.
    pub fn unassign(&mut self, frame: usize, net: CtlNetId) {
        let i = self.idx(frame, net);
        self.free[i] = V3::X;
    }

    /// The assignment (not the implied value) of a free input.
    pub fn assigned(&self, frame: usize, net: CtlNetId) -> V3 {
        self.free[self.idx(frame, net)]
    }

    /// The implied value of any net at a frame (valid after
    /// [`propagate`](Unrolled::propagate)).
    pub fn value(&self, frame: usize, net: CtlNetId) -> V3 {
        self.vals[self.idx(frame, net)]
    }

    /// Every free-input assignment currently installed, in `(frame, net)`
    /// index order. Since [`propagate`](Unrolled::propagate) is a pure
    /// function of this set, it (together with the frame count) fully keys
    /// the model's state — which is what the `CTRLJUST` objective memo
    /// hashes.
    pub fn free_assignments(&self) -> Vec<(u32, u32, bool)> {
        let n = self.nl.net_count();
        self.free
            .iter()
            .enumerate()
            .filter_map(|(i, v)| {
                v.to_bool()
                    .map(|b| ((i / n) as u32, (i % n) as u32, b))
            })
            .collect()
    }

    /// Forward three-valued evaluation of every frame.
    pub fn propagate(&mut self) {
        for f in 0..self.frames {
            // Flip-flop states entering frame f.
            for k in 0..self.ffs.len() {
                let q = self.ffs[k];
                let v = if f == 0 {
                    match self.nl.net(q).op {
                        CtlOp::Ff(spec) => V3::from_bool(spec.init),
                        _ => unreachable!("ffs holds flip-flops"),
                    }
                } else {
                    self.ff_next(f - 1, q)
                };
                let i = self.idx(f, q);
                self.vals[i] = v;
            }
            // Combinational settle.
            for k in 0..self.topo.len() {
                let id = self.topo[k];
                let net = self.nl.net(id);
                let v = match net.op {
                    CtlOp::Input(CtlInputKind::Cpi) | CtlOp::Input(CtlInputKind::Sts) => {
                        self.free[self.idx(f, id)]
                    }
                    CtlOp::Const(c) => V3::from_bool(c),
                    _ => {
                        let ins: Vec<V3> =
                            net.inputs.iter().map(|&i| self.value(f, i)).collect();
                        eval_gate(net.op, &ins)
                    }
                };
                let i = self.idx(f, id);
                self.vals[i] = v;
            }
        }
    }

    /// Three-valued next-state of flip-flop `q` given frame `f` values.
    fn ff_next(&self, f: usize, q: CtlNetId) -> V3 {
        let net = self.nl.net(q);
        let CtlOp::Ff(spec) = net.op else {
            unreachable!("ff_next on non-ff")
        };
        let d = self.value(f, net.inputs[0]);
        let mut port = 1;
        let en = if spec.has_enable {
            let e = self.value(f, net.inputs[port]);
            port += 1;
            e
        } else {
            V3::One
        };
        let clr = if spec.has_clear {
            self.value(f, net.inputs[port])
        } else {
            V3::Zero
        };
        let prev = self.value(f, q);
        let no_clear_case = match en {
            V3::One => d,
            V3::Zero => prev,
            V3::X => {
                if d == prev {
                    d
                } else {
                    V3::X
                }
            }
        };
        match clr {
            V3::One => V3::from_bool(spec.clear_val),
            V3::Zero => no_clear_case,
            V3::X => {
                let cleared = V3::from_bool(spec.clear_val);
                if cleared == no_clear_case {
                    cleared
                } else {
                    V3::X
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hltg_netlist::ctl::CtlBuilder;

    /// q[t+1] = i[t]; y = not q. Checks frame-to-frame state flow.
    #[test]
    fn state_flows_across_frames() {
        let mut b = CtlBuilder::new("c");
        let i = b.cpi("i");
        let q = b.ff("q", i, false);
        let y = b.not(q);
        b.mark_cpo(y);
        let nl = b.finish().unwrap();

        let mut u = Unrolled::new(&nl, 3);
        u.assign(0, i, true);
        u.propagate();
        assert_eq!(u.value(0, q), V3::Zero, "reset value");
        assert_eq!(u.value(0, y), V3::One);
        assert_eq!(u.value(1, q), V3::One, "latched the frame-0 input");
        assert_eq!(u.value(1, y), V3::Zero);
        assert_eq!(u.value(2, q), V3::X, "frame-1 input unassigned");
        assert_eq!(u.value(2, y), V3::X);
    }

    #[test]
    fn enable_and_clear_semantics() {
        let mut b = CtlBuilder::new("c");
        let d = b.cpi("d");
        let en = b.cpi("en");
        let clr = b.cpi("clr");
        let q = b.ff_spec(
            "q",
            d,
            hltg_netlist::ctl::FfSpec {
                init: false,
                has_enable: true,
                has_clear: true,
                clear_val: false,
            },
            Some(en),
            Some(clr),
        );
        b.mark_cpo(q);
        let nl = b.finish().unwrap();
        let mut u = Unrolled::new(&nl, 4);
        // Frame 0: load 1.
        u.assign(0, d, true);
        u.assign(0, en, true);
        u.assign(0, clr, false);
        // Frame 1: hold (en=0) despite d=0.
        u.assign(1, d, false);
        u.assign(1, en, false);
        u.assign(1, clr, false);
        // Frame 2: clear dominates en.
        u.assign(2, d, true);
        u.assign(2, en, true);
        u.assign(2, clr, true);
        u.propagate();
        assert_eq!(u.value(1, q), V3::One);
        assert_eq!(u.value(2, q), V3::One, "held");
        assert_eq!(u.value(3, q), V3::Zero, "cleared");
    }

    #[test]
    fn x_enable_with_equal_dq_stays_known() {
        let mut b = CtlBuilder::new("c");
        let d = b.cpi("d");
        let en = b.cpi("en");
        let q = b.ff_spec(
            "q",
            d,
            hltg_netlist::ctl::FfSpec {
                init: false,
                has_enable: true,
                has_clear: false,
                clear_val: false,
            },
            Some(en),
            None,
        );
        b.mark_cpo(q);
        let nl = b.finish().unwrap();
        let mut u = Unrolled::new(&nl, 2);
        // d = 0 = reset value, en unknown: next state is 0 either way.
        u.assign(0, d, false);
        u.propagate();
        assert_eq!(u.value(1, q), V3::Zero);
    }

    #[test]
    fn dlx_reset_frame_implies_inert_control() {
        let dlx = hltg_dlx::DlxDesign::build();
        let mut u = Unrolled::new(&dlx.design.ctl, 6);
        u.propagate();
        // At reset every CPR is zero: no store, no regwrite, no squash can
        // be implied in the first frames regardless of inputs.
        assert_eq!(u.value(0, dlx.ctl.squash), V3::Zero);
        assert_eq!(u.value(0, dlx.ctl.stall), V3::Zero);
        assert_eq!(u.value(0, dlx.ctl.c_mem_we), V3::Zero);
        assert_eq!(u.value(0, dlx.ctl.c_rf_we), V3::Zero);
        assert_eq!(u.value(1, dlx.ctl.c_rf_we), V3::Zero);
        // With unknown instructions, later frames are unknown.
        assert_eq!(u.value(5, dlx.ctl.c_rf_we), V3::X);
    }
}
