//! Controllability (C) and observability (O) state lattices and the
//! per-class propagation tables of the paper's Figure 5.
//!
//! Path selection annotates every datapath port with a C-state and an
//! O-state:
//!
//! * `C1` — unknown whether the port can be controlled (open decisions);
//! * `C2` — not (yet) controllable, but open decisions remain in its
//!   transitive fanin;
//! * `C3` — not controllable and *settled*: no open decisions remain, the
//!   port's value is determined by the current partial assignment;
//! * `C4` — controlled: the search can justify an arbitrary value here.
//!
//! * `O1` — unknown whether the port can be observed;
//! * `O2` — not observable;
//! * `O3` — observable.
//!
//! The tables encode the module-class semantics of §V.A:
//!
//! * **ADD** class: any single controlled input justifies the output, but
//!   only once the side inputs are settled (`C3`/`C4`); if the output is
//!   observable and the sides are settled, every input is observable.
//! * **AND** class: all inputs must be *controlled* (`C4`) both to justify
//!   the output and to expose one input at the output.
//! * **MUX** class: the select routes exactly one data input; unassigned
//!   selects leave the state open.

use hltg_netlist::dp::DpClass;

/// Controllability state of a port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum CState {
    C1,
    C2,
    C3,
    C4,
}

impl CState {
    /// `true` for states with no open decisions left (`C3`/`C4`).
    pub fn is_settled(self) -> bool {
        matches!(self, CState::C3 | CState::C4)
    }

    /// `true` if the port is controlled.
    pub fn is_controlled(self) -> bool {
        self == CState::C4
    }
}

/// Observability state of a port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum OState {
    O1,
    O2,
    O3,
}

impl OState {
    /// `true` if the port is observable.
    pub fn is_observable(self) -> bool {
        self == OState::O3
    }
}

/// Forward C-propagation for an **ADD**-class module: output state from the
/// input states.
///
/// The output is controlled through one controlled input once every other
/// input is settled; a single open input keeps the output open.
pub fn add_c_forward(inputs: &[CState]) -> CState {
    if inputs.is_empty() {
        return CState::C3; // constant-like
    }
    let all_settled = inputs.iter().all(|c| c.is_settled());
    if all_settled {
        if inputs.iter().any(|c| c.is_controlled()) {
            CState::C4
        } else {
            CState::C3
        }
    } else if inputs.contains(&CState::C1) {
        CState::C1
    } else {
        CState::C2
    }
}

/// Forward C-propagation for an **AND**-class module.
pub fn and_c_forward(inputs: &[CState]) -> CState {
    if inputs.iter().all(|c| c.is_controlled()) {
        CState::C4
    } else if inputs.contains(&CState::C3) {
        // Some input can never be controlled: the output cannot be
        // justified to an arbitrary value, and that is final.
        CState::C3
    } else if inputs.contains(&CState::C1) {
        CState::C1
    } else {
        CState::C2
    }
}

/// Forward C-propagation for a **MUX**-class module. `selected` is the data
/// input routed by the (fully assigned) selects, or `None` while any select
/// is unassigned.
pub fn mux_c_forward(inputs: &[CState], selected: Option<usize>) -> CState {
    match selected {
        Some(i) => inputs[i],
        None => {
            if inputs.iter().all(|&c| c == CState::C3) {
                CState::C3
            } else {
                // The select is an open decision: outcome unknown.
                CState::C1
            }
        }
    }
}

/// Backward O-propagation for an **ADD**-class module: state of input `i`
/// given the output's O-state and the C-states of the side inputs.
pub fn add_o_backward(output: OState, sides: &[CState]) -> OState {
    match output {
        OState::O2 => OState::O2,
        OState::O1 => OState::O1,
        OState::O3 => {
            if sides.iter().all(|c| c.is_settled()) {
                OState::O3
            } else {
                OState::O1
            }
        }
    }
}

/// Backward O-propagation for an **AND**-class module.
pub fn and_o_backward(output: OState, sides: &[CState]) -> OState {
    match output {
        OState::O2 => OState::O2,
        OState::O1 => OState::O1,
        OState::O3 => {
            if sides.iter().all(|c| c.is_controlled()) {
                OState::O3
            } else if sides
                .iter()
                .any(|&c| c == CState::C2 || c == CState::C3)
            {
                // A side input that cannot be driven to the non-masking
                // value blocks observation.
                OState::O2
            } else {
                OState::O1
            }
        }
    }
}

/// Backward O-propagation for a **MUX**-class module: state of data input
/// `i` given the output's O-state and the routed input (if decided).
pub fn mux_o_backward(output: OState, selected: Option<usize>, i: usize) -> OState {
    match output {
        OState::O2 => OState::O2,
        _ => match selected {
            Some(s) if s == i => output,
            Some(_) => OState::O2,
            // Open select: routing is still undecided.
            None => OState::O1,
        },
    }
}

/// Dispatches forward C-propagation by module class (`Mux` requires the
/// select resolution).
pub fn c_forward(class: DpClass, inputs: &[CState], selected: Option<usize>) -> CState {
    match class {
        DpClass::Add => add_c_forward(inputs),
        DpClass::And => and_c_forward(inputs),
        DpClass::Mux => mux_c_forward(inputs, selected),
        DpClass::Source => CState::C4,
        DpClass::Sink | DpClass::Seq => add_c_forward(inputs),
    }
}

/// Pretty-prints the Figure 5 tables for the two-input representatives of
/// each class (used by the `fig5_tables` report binary).
pub fn format_fig5_tables() -> String {
    use std::fmt::Write;
    let cs = [CState::C1, CState::C2, CState::C3, CState::C4];
    let os = [OState::O1, OState::O2, OState::O3];
    let mut s = String::new();
    let _ = writeln!(s, "ADD2  C(y) from C(x1) x C(x2):");
    for &c1 in &cs {
        let _ = write!(s, "  {c1:?}:");
        for &c2 in &cs {
            let _ = write!(s, " {:?}", add_c_forward(&[c1, c2]));
        }
        let _ = writeln!(s);
    }
    let _ = writeln!(s, "ADD2  O(x1) from C(x2) x O(y):");
    for &c2 in &cs {
        let _ = write!(s, "  {c2:?}:");
        for &o in &os {
            let _ = write!(s, " {:?}", add_o_backward(o, &[c2]));
        }
        let _ = writeln!(s);
    }
    let _ = writeln!(s, "AND2  C(y) from C(x1) x C(x2):");
    for &c1 in &cs {
        let _ = write!(s, "  {c1:?}:");
        for &c2 in &cs {
            let _ = write!(s, " {:?}", and_c_forward(&[c1, c2]));
        }
        let _ = writeln!(s);
    }
    let _ = writeln!(s, "AND2  O(x1) from C(x2) x O(y):");
    for &c2 in &cs {
        let _ = write!(s, "  {c2:?}:");
        for &o in &os {
            let _ = write!(s, " {:?}", and_o_backward(o, &[c2]));
        }
        let _ = writeln!(s);
    }
    let _ = writeln!(s, "MUX2  C(y): sel=u -> open (C1/C3); sel=k -> C(x_k)");
    for &c1 in &cs {
        let _ = write!(s, "  sel=u, x:{c1:?}:");
        let _ = writeln!(s, " {:?}", mux_c_forward(&[c1, c1], None));
    }
    let _ = writeln!(s, "MUX2  O(x1) from sel x O(y):");
    for (sel, label) in [(None, "u"), (Some(0), "0"), (Some(1), "1")] {
        let _ = write!(s, "  sel={label}:");
        for &o in &os {
            let _ = write!(s, " {:?}", mux_o_backward(o, sel, 0));
        }
        let _ = writeln!(s);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use CState::*;
    use OState::*;

    #[test]
    fn add_forward_requires_settled_sides() {
        // A controlled input justifies the output only once the side input
        // is settled.
        assert_eq!(add_c_forward(&[C4, C3]), C4);
        assert_eq!(add_c_forward(&[C4, C4]), C4);
        assert_eq!(add_c_forward(&[C4, C1]), C1);
        assert_eq!(add_c_forward(&[C4, C2]), C2);
        assert_eq!(add_c_forward(&[C3, C3]), C3);
        assert_eq!(add_c_forward(&[C2, C3]), C2);
        assert_eq!(add_c_forward(&[C1, C3]), C1);
    }

    #[test]
    fn and_forward_requires_all_controlled() {
        assert_eq!(and_c_forward(&[C4, C4]), C4);
        assert_eq!(and_c_forward(&[C4, C3]), C3, "uncontrollable side is final");
        assert_eq!(and_c_forward(&[C4, C2]), C2);
        assert_eq!(and_c_forward(&[C4, C1]), C1);
        assert_eq!(and_c_forward(&[C1, C2]), C1);
    }

    #[test]
    fn mux_forward_routes_selected() {
        assert_eq!(mux_c_forward(&[C4, C3], Some(0)), C4);
        assert_eq!(mux_c_forward(&[C4, C3], Some(1)), C3);
        assert_eq!(mux_c_forward(&[C4, C3], None), C1, "open select");
        assert_eq!(mux_c_forward(&[C3, C3], None), C3);
    }

    #[test]
    fn add_backward_observability() {
        assert_eq!(add_o_backward(O3, &[C3]), O3);
        assert_eq!(add_o_backward(O3, &[C4]), O3);
        assert_eq!(add_o_backward(O3, &[C1]), O1, "unsettled side blocks");
        assert_eq!(add_o_backward(O3, &[C2]), O1);
        assert_eq!(add_o_backward(O2, &[C4]), O2);
        assert_eq!(add_o_backward(O1, &[C4]), O1);
    }

    #[test]
    fn and_backward_observability() {
        assert_eq!(and_o_backward(O3, &[C4]), O3);
        assert_eq!(and_o_backward(O3, &[C3]), O2, "cannot unmask");
        assert_eq!(and_o_backward(O3, &[C2]), O2);
        assert_eq!(and_o_backward(O3, &[C1]), O1);
        assert_eq!(and_o_backward(O2, &[C4]), O2);
    }

    #[test]
    fn mux_backward_observability() {
        assert_eq!(mux_o_backward(O3, Some(0), 0), O3);
        assert_eq!(mux_o_backward(O3, Some(1), 0), O2, "deselected");
        assert_eq!(mux_o_backward(O3, None, 0), O1);
        assert_eq!(mux_o_backward(O2, Some(0), 0), O2);
    }

    #[test]
    fn fig5_report_renders() {
        let s = format_fig5_tables();
        assert!(s.contains("ADD2") && s.contains("MUX2"));
    }
}
