//! `hltg-serve` — a supervised, fault-tolerant campaign service.
//!
//! The paper's campaign is a one-shot batch run; this crate turns it
//! into a long-running *service*: a job queue plus supervisor that
//! multiplexes campaign shards from many submissions (any registered
//! design, any validated [`hltg_core::CampaignConfig`]) over one shared
//! worker pool, streaming incremental per-error results and service
//! metrics as JSONL over a stdio line protocol.
//!
//! The robustness core is the supervisor loop ([`supervisor`]):
//!
//! * per-worker **heartbeats** with deadline-based detection of stalled
//!   or dead workers;
//! * automatic **kill-and-respawn** that resumes the victim shard from
//!   its fingerprint-guarded checkpoint log (suspend/migrate is just
//!   checkpoint + reschedule);
//! * **bounded exponential backoff** on repeatedly-crashing shards,
//!   ending in a graceful `degraded` verdict with partial results
//!   rather than a hung service;
//! * clean **drain-on-shutdown**, with checkpoints surviving an
//!   immediate shutdown for a later resume.
//!
//! The correctness contract, pinned by `tests/soak.rs` at the workspace
//! root: a job sliced across arbitrary scheduler interleavings —
//! including chaos-injected worker death and kill/resume cycles —
//! produces a final report byte-identical
//! ([`hltg_core::CampaignReport::to_json_deterministic`]) to an
//! uninterrupted single-threaded run. The mechanism is the division of
//! labor with [`hltg_core::campaign::Campaign::run_shard`]: shards only
//! *persist* deterministic per-error generations; the final report is
//! always produced by the one true merge path ([`Campaign::run`]) over
//! the shared checkpoint, where every generation is a replay hit.
//!
//! [`Campaign::run`]: hltg_core::Campaign::run

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
mod queue;
mod scheduler;
pub mod supervisor;

pub use client::{serve_lines, Client};
pub use protocol::{
    extract_report, parse_request, ChaosSpec, Event, JobId, JobSpec, JobStatus, Request,
    ServiceMetrics, Verdict,
};
pub use queue::DoneInfo;
pub use supervisor::{ServeConfig, Service};

/// Resolves a job's `design` name to a fresh model through the
/// process-wide [`hltg_netlist::registry`], after registering every
/// workspace backend (`dlx`, `dlx16`, `dlx-lite`, `rv32`, `rv32-7`).
/// Returns `None` for a name no backend registered.
#[must_use]
pub fn build_model(name: &str) -> Option<Box<dyn hltg_netlist::ProcessorModel>> {
    hltg_dlx::register_backends();
    hltg_rv32::register_backends();
    hltg_netlist::registry::build_model(name)
}
