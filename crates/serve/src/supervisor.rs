//! The service façade and the heartbeat supervisor.
//!
//! [`Service::start`] spawns the worker pool and one supervisor thread.
//! The supervisor's job is purely negative: every
//! [`ServeConfig::supervise_every`], it scans the busy worker slots and
//! condemns any whose last heartbeat is older than
//! [`ServeConfig::heartbeat_deadline`] — the worker is presumed stalled
//! or dead. Condemnation takes the shard away (requeue behind backoff,
//! or degrade the job once its attempt budget is burned), spawns a
//! replacement worker, and leaves a flag the stalled thread honors at
//! its next boundary, whenever that is. Everything the victim attempt
//! completed is already in the checkpoint, so the respawned attempt
//! resumes rather than repeats.
//!
//! Supervisor state machine, per busy slot:
//!
//! ```text
//! busy --deadline missed--> condemned --(thread wakes)--> retired
//!   \--attempt settles----> idle/dead (see scheduler::settle)
//! ```
//!
//! Shutdown comes in two flavors: [`Service::drain`] stops intake,
//! lets every accepted job reach a terminal state, then joins all
//! threads; [`Service::shutdown_now`] cancels everything first.
//! Checkpoints survive either way — resubmitting the same spec against
//! the same spool resumes, which the soak suite's kill/resume scenario
//! pins.

use crate::protocol::{Event, JobId, JobSpec, JobStatus, ServiceMetrics};
use crate::queue::{plan_job, DoneInfo};
use crate::scheduler::{
    requeue_or_degrade_locked, spawn_worker_locked, ServiceCounters, Shared, State, FINALIZE,
};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Tuning of one service instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (the pool is kept at this strength across
    /// respawns).
    pub workers: usize,
    /// Spool directory for per-job checkpoint files.
    pub spool: PathBuf,
    /// A busy worker whose heartbeat is older than this is condemned.
    /// Heartbeats tick at error boundaries, so the deadline must
    /// comfortably exceed one per-error generation.
    pub heartbeat_deadline: Duration,
    /// Supervisor scan period.
    pub supervise_every: Duration,
    /// Attempts per shard before the job degrades.
    pub max_attempts: u32,
    /// First respawn backoff; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            spool: std::env::temp_dir().join("hltg-serve-spool"),
            heartbeat_deadline: Duration::from_secs(2),
            supervise_every: Duration::from_millis(10),
            max_attempts: 4,
            backoff_base: Duration::from_millis(8),
            backoff_max: Duration::from_millis(500),
        }
    }
}

/// A running campaign service: shared worker pool, job queue,
/// supervisor. Events stream over the channel returned by
/// [`Service::start`]; the control surface ([`Service::submit`] etc.)
/// is thread-safe through the inner mutex.
pub struct Service {
    shared: Arc<Shared>,
}

impl Service {
    /// Starts the pool and the supervisor.
    #[must_use]
    pub fn start(cfg: ServeConfig) -> (Service, Receiver<Event>) {
        let (tx, rx) = channel();
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            cfg,
            epoch: Instant::now(),
            state: Mutex::new(State {
                jobs: BTreeMap::new(),
                next_job: 1,
                slots: Vec::new(),
                live_workers: 0,
                draining: false,
                stop_now: false,
            }),
            work: Condvar::new(),
            events: Mutex::new(Some(tx)),
            handles: Mutex::new(Vec::new()),
            counters: ServiceCounters::default(),
        });
        {
            let mut st = shared.lock_state();
            for _ in 0..workers {
                spawn_worker_locked(&shared, &mut st);
            }
        }
        let sup = Arc::clone(&shared);
        let handle = std::thread::spawn(move || supervise(&sup));
        shared
            .handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(handle);
        (Service { shared }, rx)
    }

    /// Submits a job: validates, opens/resumes its checkpoint, shards
    /// it, and emits an `accepted` (or `rejected`) event. Names must be
    /// unique among non-terminal jobs — two live jobs with one name
    /// would contend for one spool file.
    pub fn submit(&self, spec: &JobSpec) -> Result<JobId, String> {
        let refused = {
            let st = self.shared.lock_state();
            if st.draining || st.stop_now {
                Some("service is shutting down".to_string())
            } else if st
                .jobs
                .values()
                .any(|j| !j.terminal() && j.spec.name == spec.name)
            {
                Some(format!("job name {:?} is already active", spec.name))
            } else {
                None
            }
        };
        let planned = match refused {
            Some(reason) => Err(reason),
            // Planning runs unlocked: it builds a model and opens files.
            None => plan_job(spec, &self.shared.cfg.spool, 0),
        };
        let mut job = match planned {
            Ok(job) => job,
            Err(reason) => {
                self.shared.emit(Event::Rejected {
                    name: spec.name.clone(),
                    reason: reason.clone(),
                });
                return Err(reason);
            }
        };
        let mut st = self.shared.lock_state();
        if st.draining || st.stop_now {
            let reason = "service is shutting down".to_string();
            self.shared.emit(Event::Rejected {
                name: spec.name.clone(),
                reason: reason.clone(),
            });
            return Err(reason);
        }
        let id = st.next_job;
        st.next_job += 1;
        job.id = id;
        let accepted = Event::Accepted {
            job: JobId(id),
            name: spec.name.clone(),
            design: spec.design.clone(),
            errors: job.total,
            shards: job.shards.len(),
            resumed: job.ckpt.resumed(),
        };
        st.jobs.insert(id, job);
        self.shared
            .counters
            .jobs_submitted
            .fetch_add(1, Ordering::Relaxed);
        // Emit while still holding the state lock so `accepted` precedes
        // any `record` a fast worker could produce for this job.
        self.shared.emit(accepted);
        drop(st);
        self.shared.work.notify_all();
        Ok(JobId(id))
    }

    /// Cancels a job. Running attempts stop at their next error
    /// boundary; the job terminates with [`Verdict::Cancelled`] and a
    /// partial report. Returns `false` for unknown or already-terminal
    /// jobs.
    pub fn cancel(&self, job: JobId) -> bool {
        let mut st = self.shared.lock_state();
        let Some(j) = st.jobs.get_mut(&job.0) else {
            return false;
        };
        if j.terminal() {
            return false;
        }
        j.cancelled = true;
        j.cancel.store(true, Ordering::Relaxed);
        drop(st);
        self.shared.work.notify_all();
        true
    }

    /// Snapshot of every known job.
    #[must_use]
    pub fn status(&self) -> Vec<JobStatus> {
        let st = self.shared.lock_state();
        st.jobs
            .values()
            .map(|j| JobStatus {
                job: JobId(j.id),
                name: j.spec.name.clone(),
                design: j.spec.design.clone(),
                phase: j.phase_str(),
                verdict: j.done.as_ref().map(|d| d.verdict),
                shards_done: j.shards_done(),
                shards: j.shards.len(),
            })
            .collect()
    }

    /// Cumulative service counters.
    #[must_use]
    pub fn metrics(&self) -> ServiceMetrics {
        self.shared.counters.snapshot()
    }

    /// Emits the matching event for a read-only request (`status` /
    /// `metrics`) onto the event stream.
    pub fn emit_status(&self) {
        self.shared.emit(Event::Status(self.status()));
    }

    /// See [`Service::emit_status`].
    pub fn emit_metrics(&self) {
        self.shared.emit(Event::Metrics(self.metrics()));
    }

    /// Puts an arbitrary event onto the stream (the line pump's channel
    /// for surfacing request-parse errors).
    pub(crate) fn emit_event(&self, ev: Event) {
        self.shared.emit(ev);
    }

    /// Blocks until `job` reaches a terminal state, up to `timeout`.
    #[must_use]
    pub fn wait_done(&self, job: JobId, timeout: Duration) -> Option<DoneInfo> {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let st = self.shared.lock_state();
                match st.jobs.get(&job.0) {
                    Some(j) => {
                        if let Some(done) = &j.done {
                            return Some(done.clone());
                        }
                    }
                    None => return None,
                }
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Graceful shutdown: stop accepting, let every accepted job reach
    /// a terminal state, then stop the pool and the supervisor. The
    /// event channel closes when the last event has been sent.
    pub fn drain(self) {
        {
            let mut st = self.shared.lock_state();
            st.draining = true;
        }
        self.shared.work.notify_all();
        self.join_all();
    }

    /// Immediate shutdown: cancel every non-terminal job and stop. No
    /// `done` events are produced for the cancelled jobs — their
    /// checkpoints survive for a later resume.
    pub fn shutdown_now(self) {
        {
            let mut st = self.shared.lock_state();
            st.stop_now = true;
            for job in st.jobs.values_mut() {
                if !job.terminal() {
                    job.cancel.store(true, Ordering::Relaxed);
                }
            }
        }
        self.shared.work.notify_all();
        self.join_all();
    }

    fn join_all(self) {
        loop {
            let handle = {
                let mut handles = self
                    .shared
                    .handles
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                handles.pop()
            };
            let Some(handle) = handle else { break };
            let _ = handle.join();
            // Worker deaths respawn replacements; keep popping until the
            // vector stays empty. Stop the supervisor once workers are
            // done so it cannot spawn into a drained pool.
            let mut st = self.shared.lock_state();
            if st.live_workers == 0 {
                st.stop_now = true;
            }
            drop(st);
            self.shared.work.notify_all();
        }
        let mut events = self
            .shared
            .events
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *events = None; // close the stream
    }
}

/// The supervisor thread: deadline-scan every busy slot.
fn supervise(shared: &Arc<Shared>) {
    loop {
        std::thread::sleep(shared.cfg.supervise_every);
        let mut st = shared.lock_state();
        if st.stop_now || (st.draining && st.all_terminal() && st.live_workers == 0) {
            return;
        }
        let now_ms = shared.now_ms();
        let deadline_ms = shared.cfg.heartbeat_deadline.as_millis() as u64;
        for i in 0..st.slots.len() {
            let slot = &st.slots[i];
            if !slot.alive || slot.flags.condemned.load(Ordering::Relaxed) {
                continue;
            }
            let Some((job_id, shard_idx)) = slot.busy else {
                continue;
            };
            if shard_idx == FINALIZE {
                // The finalizing merge replays without observer
                // callbacks; it has no heartbeat and is exempt.
                continue;
            }
            let beat = slot.flags.beat_ms.load(Ordering::Relaxed);
            if now_ms.saturating_sub(beat) <= deadline_ms {
                continue;
            }
            // Stalled or dead: condemn the worker, take the shard away,
            // respawn. The thread (if it ever wakes) retires at its next
            // boundary; the checkpoint already holds its progress.
            st.slots[i].flags.condemned.store(true, Ordering::Relaxed);
            st.slots[i].busy = None;
            shared
                .counters
                .stalls_detected
                .fetch_add(1, Ordering::Relaxed);
            if let Some(job) = st.jobs.get_mut(&job_id) {
                requeue_or_degrade_locked(shared, job, shard_idx, i, "stall");
            }
            spawn_worker_locked(shared, &mut st);
        }
        drop(st);
        shared.work.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Verdict;

    fn temp_spool(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hltg_serve_sup_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_cfg(tag: &str) -> ServeConfig {
        ServeConfig {
            workers: 2,
            spool: temp_spool(tag),
            heartbeat_deadline: Duration::from_millis(500),
            supervise_every: Duration::from_millis(5),
            max_attempts: 4,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(20),
        }
    }

    #[test]
    fn a_plain_job_runs_to_an_ok_verdict() {
        let cfg = tiny_cfg("plain");
        let spool = cfg.spool.clone();
        let (service, events) = Service::start(cfg);
        let spec = JobSpec {
            name: "plain".to_string(),
            limit: Some(4),
            shard_size: 2,
            ..JobSpec::default()
        };
        let job = service.submit(&spec).expect("accepted");
        let done = service
            .wait_done(job, Duration::from_secs(60))
            .expect("finishes");
        assert_eq!(done.verdict, Verdict::Ok);
        assert_eq!(done.completed, 4);
        assert_eq!(done.total, 4);
        service.drain();
        let evs: Vec<Event> = events.iter().collect();
        assert!(evs
            .iter()
            .any(|e| matches!(e, Event::Accepted { errors: 4, .. })));
        assert!(evs.iter().any(|e| matches!(e, Event::Record { .. })));
        assert!(evs
            .iter()
            .any(|e| matches!(e, Event::Done { verdict: Verdict::Ok, .. })));
        let _ = std::fs::remove_dir_all(&spool);
    }

    #[test]
    fn duplicate_active_names_are_refused() {
        let cfg = tiny_cfg("dup");
        let spool = cfg.spool.clone();
        let (service, _events) = Service::start(cfg);
        let spec = JobSpec {
            name: "dup".to_string(),
            limit: Some(6),
            ..JobSpec::default()
        };
        let first = service.submit(&spec).expect("accepted");
        let err = service.submit(&spec).expect_err("refused");
        assert!(err.contains("already active"), "{err}");
        assert!(service.wait_done(first, Duration::from_secs(60)).is_some());
        // Terminal now: the name is free again.
        service.submit(&spec).expect("accepted after completion");
        service.drain();
        let _ = std::fs::remove_dir_all(&spool);
    }

    #[test]
    fn cancel_yields_a_cancelled_verdict_with_a_partial_report() {
        let cfg = tiny_cfg("cancel");
        let spool = cfg.spool.clone();
        let (service, _events) = Service::start(cfg);
        let spec = JobSpec {
            name: "cancel".to_string(),
            limit: Some(8),
            shard_size: 2,
            ..JobSpec::default()
        };
        let job = service.submit(&spec).expect("accepted");
        assert!(service.cancel(job));
        let done = service
            .wait_done(job, Duration::from_secs(60))
            .expect("terminates");
        assert_eq!(done.verdict, Verdict::Cancelled);
        assert!(done.completed <= done.total);
        assert!(done.report.starts_with('{'));
        assert!(!service.cancel(job), "terminal jobs cannot be re-cancelled");
        service.drain();
        let _ = std::fs::remove_dir_all(&spool);
    }

    #[test]
    fn drain_refuses_new_submissions() {
        let cfg = tiny_cfg("drainref");
        let spool = cfg.spool.clone();
        let (service, _events) = Service::start(cfg);
        {
            let mut st = service.shared.lock_state();
            st.draining = true;
        }
        let err = service
            .submit(&JobSpec {
                name: "late".to_string(),
                limit: Some(2),
                ..JobSpec::default()
            })
            .expect_err("refused");
        assert!(err.contains("shutting down"), "{err}");
        service.drain();
        let _ = std::fs::remove_dir_all(&spool);
    }
}
