//! The JSONL line protocol of the campaign service.
//!
//! One JSON object per line in each direction. Client → service lines
//! are [`Request`]s; service → client lines are [`Event`]s. The grammar
//! is deliberately small and hand-rolled over [`hltg_core::jsonv`] —
//! the workspace has no external dependencies — and every emitted line
//! parses back through `jsonv`, which the protocol tests pin.
//!
//! Requests:
//!
//! ```text
//! {"req": "submit", "name": "...", "design": "dlx", "limit": 8, ...}
//! {"req": "status"}
//! {"req": "metrics"}
//! {"req": "cancel", "job": 1}
//! {"req": "shutdown", "drain": true}
//! ```
//!
//! Events lead with an `"ev"` tag: `accepted`, `rejected`, `record`,
//! `respawn`, `degraded`, `done`, `status`, `metrics`, `stopped`. The
//! `done` event carries the job's final report as an embedded JSON
//! object in its *last* field, so [`extract_report`] can recover it
//! byte-exactly for the determinism contract.

use hltg_core::instrument::json_escape;
use hltg_core::jsonv;
use hltg_core::{CampaignConfig, ChaosConfig, ConfigError, RetryPolicy};
use std::fmt;
use std::time::Duration;

/// Handle of an accepted job, unique within one service instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Final verdict of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Every shard completed and the finalizing merge ran: the report is
    /// byte-identical to an uninterrupted single-threaded run.
    Ok,
    /// The job exhausted its respawn budget (a crash-looping shard); the
    /// report covers the checkpointed prefix only.
    Degraded,
    /// The client cancelled the job; the report covers the checkpointed
    /// prefix only.
    Cancelled,
}

impl Verdict {
    /// The protocol tag (`"ok"`, `"degraded"`, `"cancelled"`).
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Degraded => "degraded",
            Verdict::Cancelled => "cancelled",
        }
    }
}

/// Chaos plan of one submission: the generator-level fault sites of
/// [`ChaosConfig`] plus the two *service*-level sites the supervisor
/// must absorb — worker kills and worker stalls.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChaosSpec {
    /// Seed for every injection decision of this job.
    pub seed: u64,
    /// Permille chance of a generator panic at a phase entry.
    pub panic_permille: u32,
    /// Permille chance of a spurious `CTRLJUST` backtrack.
    pub backtrack_permille: u32,
    /// Permille chance of a torn checkpoint append.
    pub ckpt_torn_permille: u32,
    /// Permille chance of a transient disk-full checkpoint append.
    pub ckpt_full_permille: u32,
    /// Permille chance, per error boundary past the first of an attempt,
    /// of the worker dying on the spot (the attempt ends as a crash; the
    /// supervisor respawns and resumes from the checkpoint). Kills never
    /// land on an attempt's first error, so even `1000` crash-*loops*
    /// instead of wedging: each attempt checkpoints at least one error
    /// before dying, which is exactly the degraded-verdict scenario the
    /// soak suite pins.
    pub kill_permille: u32,
    /// Permille chance, per error boundary, of the worker going silent
    /// (no heartbeat) for [`ChaosSpec::stall_ms`] — the supervisor's
    /// deadline detection must condemn and replace it.
    pub stall_permille: u32,
    /// How long an injected worker stall lasts.
    pub stall_ms: u64,
}

impl ChaosSpec {
    /// The generator-level half of the plan, or `None` when every
    /// generator-level site is off (service-level kills/stalls do not
    /// perturb generation, so the job's config stays chaos-free and its
    /// checkpoint fingerprint matches a plain run's).
    #[must_use]
    pub fn generator_chaos(&self) -> Option<ChaosConfig> {
        let on = self.panic_permille > 0
            || self.backtrack_permille > 0
            || self.ckpt_torn_permille > 0
            || self.ckpt_full_permille > 0;
        on.then(|| ChaosConfig {
            seed: self.seed,
            panic_permille: self.panic_permille,
            spurious_backtrack_permille: self.backtrack_permille,
            ckpt_torn_permille: self.ckpt_torn_permille,
            ckpt_full_permille: self.ckpt_full_permille,
            ..ChaosConfig::default()
        })
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"seed\": {}, \"panic_permille\": {}, \"backtrack_permille\": {}, \
             \"ckpt_torn_permille\": {}, \"ckpt_full_permille\": {}, \
             \"kill_permille\": {}, \"stall_permille\": {}, \"stall_ms\": {}}}",
            self.seed,
            self.panic_permille,
            self.backtrack_permille,
            self.ckpt_torn_permille,
            self.ckpt_full_permille,
            self.kill_permille,
            self.stall_permille,
            self.stall_ms
        )
    }

    fn from_value(v: &jsonv::Value) -> ChaosSpec {
        ChaosSpec {
            seed: v.get_u64("seed").unwrap_or(0xC4A0_5C4A),
            panic_permille: get_u32(v, "panic_permille"),
            backtrack_permille: get_u32(v, "backtrack_permille"),
            ckpt_torn_permille: get_u32(v, "ckpt_torn_permille"),
            ckpt_full_permille: get_u32(v, "ckpt_full_permille"),
            kill_permille: get_u32(v, "kill_permille"),
            stall_permille: get_u32(v, "stall_permille"),
            stall_ms: v.get_u64("stall_ms").unwrap_or(0),
        }
    }
}

fn get_u32(v: &jsonv::Value, key: &str) -> u32 {
    v.get_u64(key).map(|n| n.min(u64::from(u32::MAX)) as u32).unwrap_or(0)
}

/// One campaign submission: which design, how much of its error
/// population, which knobs — the protocol-level mirror of a validated
/// [`CampaignConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Client-chosen job name. Also the resume identity: a resubmission
    /// with the same name and an equivalent config reuses the job's
    /// spool checkpoint, so a killed service picks up where it left off.
    pub name: String,
    /// Registered backend name, resolved through [`crate::build_model`].
    pub design: String,
    /// Cap on the number of targeted errors.
    pub limit: Option<usize>,
    /// Error simulation (screen later errors against each new test).
    pub error_simulation: bool,
    /// Error-class collapsing.
    pub collapse: bool,
    /// Retry rounds for aborted errors.
    pub retry_rounds: u32,
    /// Per-error simulation step budget.
    pub max_steps: Option<u64>,
    /// Generator seed.
    pub seed: u64,
    /// Errors per shard (the scheduling granule); clamped to at least 1.
    pub shard_size: usize,
    /// Fault-injection plan, if any.
    pub chaos: Option<ChaosSpec>,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            name: String::new(),
            design: "dlx".to_string(),
            limit: None,
            error_simulation: false,
            collapse: false,
            retry_rounds: 0,
            max_steps: None,
            seed: 1,
            shard_size: 4,
            chaos: None,
        }
    }
}

impl JobSpec {
    /// The validated campaign configuration this spec describes, already
    /// [`CampaignConfig::normalized`]. Shards and the finalizing merge
    /// both execute exactly this config (single-threaded merge), which
    /// is what makes the service's report byte-identical to an
    /// uninterrupted run of the same config.
    pub fn to_campaign_config(&self) -> Result<CampaignConfig, ConfigError> {
        let mut builder = CampaignConfig::builder()
            .error_simulation(self.error_simulation)
            .collapse(self.collapse)
            .threads(1)
            .retry(RetryPolicy {
                rounds: self.retry_rounds,
                ..RetryPolicy::default()
            });
        if let Some(limit) = self.limit {
            builder = builder.limit(limit);
        }
        if let Some(chaos) = self.chaos.as_ref().and_then(ChaosSpec::generator_chaos) {
            builder = builder.chaos(chaos);
        }
        let mut config = builder.build()?;
        config.tg.seed = self.seed;
        if self.max_steps.is_some() {
            config.tg.max_steps = self.max_steps;
        }
        Ok(config.normalized())
    }

    /// The spec as a `submit` request line (no trailing newline).
    #[must_use]
    pub fn to_request_json(&self) -> String {
        use std::fmt::Write;
        let mut out = format!(
            "{{\"req\": \"submit\", \"name\": \"{}\", \"design\": \"{}\"",
            json_escape(&self.name),
            json_escape(&self.design)
        );
        if let Some(limit) = self.limit {
            let _ = write!(out, ", \"limit\": {limit}");
        }
        let _ = write!(
            out,
            ", \"error_simulation\": {}, \"collapse\": {}, \"retry_rounds\": {}, \
             \"seed\": {}, \"shard_size\": {}",
            self.error_simulation, self.collapse, self.retry_rounds, self.seed, self.shard_size
        );
        if let Some(steps) = self.max_steps {
            let _ = write!(out, ", \"max_steps\": {steps}");
        }
        if let Some(chaos) = &self.chaos {
            let _ = write!(out, ", \"chaos\": {}", chaos.to_json());
        }
        out.push('}');
        out
    }

    fn from_value(v: &jsonv::Value) -> Result<JobSpec, String> {
        let name = v
            .get_str("name")
            .ok_or("submit: missing \"name\"")?
            .to_string();
        if name.is_empty() {
            return Err("submit: empty \"name\"".to_string());
        }
        let d = JobSpec::default();
        Ok(JobSpec {
            name,
            design: v.get_str("design").unwrap_or(&d.design).to_string(),
            limit: v.get_u64("limit").map(|n| n as usize),
            error_simulation: v.get("error_simulation").and_then(jsonv::Value::as_bool).unwrap_or(false),
            collapse: v.get("collapse").and_then(jsonv::Value::as_bool).unwrap_or(false),
            retry_rounds: get_u32(v, "retry_rounds"),
            max_steps: v.get_u64("max_steps"),
            seed: v.get_u64("seed").unwrap_or(d.seed),
            shard_size: v.get_u64("shard_size").map(|n| n as usize).unwrap_or(d.shard_size),
            chaos: v.get("chaos").map(ChaosSpec::from_value),
        })
    }
}

/// A client → service line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Submit a new job.
    Submit(Box<JobSpec>),
    /// Ask for a per-job status snapshot (`status` event).
    Status,
    /// Ask for the service counters (`metrics` event).
    Metrics,
    /// Cancel a job by id.
    Cancel(JobId),
    /// Stop the service. `drain: true` finishes every accepted job
    /// first; `false` abandons running work (checkpoints survive).
    Shutdown {
        /// Finish accepted jobs before stopping.
        drain: bool,
    },
}

impl Request {
    /// The request as a protocol line (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        match self {
            Request::Submit(spec) => spec.to_request_json(),
            Request::Status => "{\"req\": \"status\"}".to_string(),
            Request::Metrics => "{\"req\": \"metrics\"}".to_string(),
            Request::Cancel(job) => format!("{{\"req\": \"cancel\", \"job\": {job}}}"),
            Request::Shutdown { drain } => {
                format!("{{\"req\": \"shutdown\", \"drain\": {drain}}}")
            }
        }
    }
}

/// Parses one protocol line into a [`Request`].
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = jsonv::parse(line).map_err(|e| format!("bad request line: {e}"))?;
    match v.get_str("req") {
        Some("submit") => Ok(Request::Submit(Box::new(JobSpec::from_value(&v)?))),
        Some("status") => Ok(Request::Status),
        Some("metrics") => Ok(Request::Metrics),
        Some("cancel") => {
            let job = v.get_u64("job").ok_or("cancel: missing \"job\"")?;
            Ok(Request::Cancel(JobId(job)))
        }
        Some("shutdown") => Ok(Request::Shutdown {
            drain: v.get("drain").and_then(jsonv::Value::as_bool).unwrap_or(true),
        }),
        Some(other) => Err(format!("unknown request {other:?}")),
        None => Err("missing \"req\" tag".to_string()),
    }
}

/// Per-job line of a `status` event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// Job id.
    pub job: JobId,
    /// Client-chosen name.
    pub name: String,
    /// Backend name.
    pub design: String,
    /// Scheduler phase: `running`, `finalizing` or `done`.
    pub phase: &'static str,
    /// Final verdict, once `done`.
    pub verdict: Option<Verdict>,
    /// Shards whose generation completed.
    pub shards_done: usize,
    /// Total shards.
    pub shards: usize,
}

impl JobStatus {
    fn to_json(&self) -> String {
        let verdict = match self.verdict {
            Some(v) => format!("\"{}\"", v.as_str()),
            None => "null".to_string(),
        };
        format!(
            "{{\"job\": {}, \"name\": \"{}\", \"design\": \"{}\", \"phase\": \"{}\", \
             \"verdict\": {}, \"shards_done\": {}, \"shards\": {}}}",
            self.job,
            json_escape(&self.name),
            json_escape(&self.design),
            self.phase,
            verdict,
            self.shards_done,
            self.shards
        )
    }
}

/// Cumulative service counters, as carried by a `metrics` event — the
/// service-level analogue of the campaign's flight-recorder snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceMetrics {
    /// Jobs accepted.
    pub jobs_submitted: u64,
    /// Jobs finished with [`Verdict::Ok`].
    pub jobs_ok: u64,
    /// Jobs finished with [`Verdict::Degraded`].
    pub jobs_degraded: u64,
    /// Jobs finished with [`Verdict::Cancelled`].
    pub jobs_cancelled: u64,
    /// Shard attempts started.
    pub shard_attempts: u64,
    /// Shard attempts that completed their range.
    pub shards_completed: u64,
    /// Shard attempts rescheduled after a worker death (crash, injected
    /// kill, or condemned stall).
    pub respawns: u64,
    /// Stalled workers the supervisor condemned past the heartbeat
    /// deadline.
    pub stalls_detected: u64,
    /// Injected worker kills taken.
    pub chaos_kills: u64,
    /// Injected worker stalls taken.
    pub chaos_stalls: u64,
    /// Incremental `record` events streamed.
    pub records_streamed: u64,
    /// Errors skipped by shard attempts because the checkpoint already
    /// held their complete chain (resume hits).
    pub errors_resumed: u64,
}

impl ServiceMetrics {
    fn json_fields(&self) -> String {
        format!(
            "\"jobs_submitted\": {}, \"jobs_ok\": {}, \"jobs_degraded\": {}, \
             \"jobs_cancelled\": {}, \"shard_attempts\": {}, \"shards_completed\": {}, \
             \"respawns\": {}, \"stalls_detected\": {}, \"chaos_kills\": {}, \
             \"chaos_stalls\": {}, \"records_streamed\": {}, \"errors_resumed\": {}",
            self.jobs_submitted,
            self.jobs_ok,
            self.jobs_degraded,
            self.jobs_cancelled,
            self.shard_attempts,
            self.shards_completed,
            self.respawns,
            self.stalls_detected,
            self.chaos_kills,
            self.chaos_stalls,
            self.records_streamed,
            self.errors_resumed
        )
    }
}

/// A service → client line.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A submission was accepted and sharded.
    Accepted {
        /// Assigned job id.
        job: JobId,
        /// Client-chosen name.
        name: String,
        /// Backend name.
        design: String,
        /// Targeted error count.
        errors: usize,
        /// Shard count.
        shards: usize,
        /// Checkpoint entries resumed from a previous service run.
        resumed: usize,
    },
    /// A submission was refused.
    Rejected {
        /// Offending name, when known.
        name: String,
        /// Why.
        reason: String,
    },
    /// One per-error result, streamed as generation progresses.
    Record {
        /// Job id.
        job: JobId,
        /// Error index in enumeration order.
        index: usize,
        /// Error id.
        id: u64,
        /// Retry round that produced the outcome.
        round: u32,
        /// Whether the outcome is a confirmed detection.
        detected: bool,
        /// Replayed from the checkpoint (no generation ran).
        resumed: bool,
        /// Worker slot that produced it.
        worker: usize,
    },
    /// A worker died or stalled; its shard was rescheduled.
    Respawn {
        /// Job id.
        job: JobId,
        /// Shard index within the job.
        shard: usize,
        /// Worker slot that died.
        worker: usize,
        /// Attempts started so far for this shard.
        attempt: u32,
        /// `"crash"`, `"kill"` or `"stall"`.
        reason: &'static str,
        /// Backoff before the next attempt, in milliseconds.
        backoff_ms: u64,
    },
    /// A shard exhausted its respawn budget; the job is degraded.
    Degraded {
        /// Job id.
        job: JobId,
        /// Crash-looping shard index.
        shard: usize,
        /// Attempts it burned.
        attempts: u32,
    },
    /// A job reached its terminal state. The `report` field is last so
    /// [`extract_report`] recovers it byte-exactly.
    Done {
        /// Job id.
        job: JobId,
        /// Client-chosen name.
        name: String,
        /// Final verdict.
        verdict: Verdict,
        /// Errors with results in the report.
        completed: usize,
        /// Errors targeted.
        total: usize,
        /// `CampaignReport::to_json_deterministic()` of the final (for
        /// [`Verdict::Ok`]) or partial (otherwise) report.
        report: String,
    },
    /// Snapshot of every known job.
    Status(Vec<JobStatus>),
    /// Service counters.
    Metrics(ServiceMetrics),
    /// The service stopped; no further events follow.
    Stopped,
}

impl Event {
    /// The event as a protocol line (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        match self {
            Event::Accepted {
                job,
                name,
                design,
                errors,
                shards,
                resumed,
            } => format!(
                "{{\"ev\": \"accepted\", \"job\": {job}, \"name\": \"{}\", \
                 \"design\": \"{}\", \"errors\": {errors}, \"shards\": {shards}, \
                 \"resumed\": {resumed}}}",
                json_escape(name),
                json_escape(design)
            ),
            Event::Rejected { name, reason } => format!(
                "{{\"ev\": \"rejected\", \"name\": \"{}\", \"reason\": \"{}\"}}",
                json_escape(name),
                json_escape(reason)
            ),
            Event::Record {
                job,
                index,
                id,
                round,
                detected,
                resumed,
                worker,
            } => format!(
                "{{\"ev\": \"record\", \"job\": {job}, \"index\": {index}, \"id\": {id}, \
                 \"round\": {round}, \"detected\": {detected}, \"resumed\": {resumed}, \
                 \"worker\": {worker}}}"
            ),
            Event::Respawn {
                job,
                shard,
                worker,
                attempt,
                reason,
                backoff_ms,
            } => format!(
                "{{\"ev\": \"respawn\", \"job\": {job}, \"shard\": {shard}, \
                 \"worker\": {worker}, \"attempt\": {attempt}, \"reason\": \"{reason}\", \
                 \"backoff_ms\": {backoff_ms}}}"
            ),
            Event::Degraded {
                job,
                shard,
                attempts,
            } => format!(
                "{{\"ev\": \"degraded\", \"job\": {job}, \"shard\": {shard}, \
                 \"attempts\": {attempts}}}"
            ),
            Event::Done {
                job,
                name,
                verdict,
                completed,
                total,
                report,
            } => format!(
                "{{\"ev\": \"done\", \"job\": {job}, \"name\": \"{}\", \
                 \"verdict\": \"{}\", \"completed\": {completed}, \"total\": {total}, \
                 \"report\": {report}}}",
                json_escape(name),
                verdict.as_str()
            ),
            Event::Status(jobs) => {
                let mut out = String::from("{\"ev\": \"status\", \"jobs\": [");
                for (i, j) in jobs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&j.to_json());
                }
                out.push_str("]}");
                out
            }
            Event::Metrics(m) => {
                format!("{{\"ev\": \"metrics\", {}}}", m.json_fields())
            }
            Event::Stopped => "{\"ev\": \"stopped\"}".to_string(),
        }
    }
}

/// Recovers the embedded report object from a `done` event line,
/// byte-exactly — the field is emitted last precisely so this is a
/// plain substring, immune to JSON re-serialization drift.
#[must_use]
pub fn extract_report(done_line: &str) -> Option<&str> {
    const MARKER: &str = "\"report\": ";
    let line = done_line.trim_end();
    let at = line.find(MARKER)?;
    let body = &line[at + MARKER.len()..];
    body.strip_suffix('}')
}

/// How long an injected worker stall sleeps.
#[must_use]
pub fn stall_duration(spec: &ChaosSpec) -> Duration {
    Duration::from_millis(spec.stall_ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trips_through_the_line_grammar() {
        let spec = JobSpec {
            name: "night run".to_string(),
            design: "dlx16".to_string(),
            limit: Some(12),
            error_simulation: true,
            collapse: true,
            retry_rounds: 2,
            max_steps: Some(40_000),
            seed: 9,
            shard_size: 3,
            chaos: Some(ChaosSpec {
                seed: 7,
                panic_permille: 250,
                backtrack_permille: 100,
                ckpt_torn_permille: 50,
                ckpt_full_permille: 25,
                kill_permille: 300,
                stall_permille: 80,
                stall_ms: 40,
            }),
        };
        let line = Request::Submit(Box::new(spec.clone())).to_json();
        match parse_request(&line).expect("parses") {
            Request::Submit(parsed) => assert_eq!(*parsed, spec),
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn control_requests_round_trip() {
        for req in [
            Request::Status,
            Request::Metrics,
            Request::Cancel(JobId(7)),
            Request::Shutdown { drain: true },
            Request::Shutdown { drain: false },
        ] {
            assert_eq!(parse_request(&req.to_json()), Ok(req.clone()), "{req:?}");
        }
    }

    #[test]
    fn bad_request_lines_are_rejected_with_a_reason() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{\"req\": \"submit\"}").is_err());
        assert!(parse_request("{\"req\": \"warp\"}").is_err());
        assert!(parse_request("{\"job\": 3}").is_err());
    }

    #[test]
    fn every_event_line_parses_back_as_json() {
        let events = [
            Event::Accepted {
                job: JobId(1),
                name: "a \"quoted\" name".to_string(),
                design: "dlx".to_string(),
                errors: 8,
                shards: 2,
                resumed: 3,
            },
            Event::Rejected {
                name: "x".to_string(),
                reason: "unknown design".to_string(),
            },
            Event::Record {
                job: JobId(1),
                index: 4,
                id: 17,
                round: 1,
                detected: true,
                resumed: false,
                worker: 2,
            },
            Event::Respawn {
                job: JobId(1),
                shard: 0,
                worker: 2,
                attempt: 2,
                reason: "stall",
                backoff_ms: 16,
            },
            Event::Degraded {
                job: JobId(1),
                shard: 0,
                attempts: 4,
            },
            Event::Done {
                job: JobId(1),
                name: "a".to_string(),
                verdict: Verdict::Ok,
                completed: 8,
                total: 8,
                report: "{\"errors\": 8}".to_string(),
            },
            Event::Status(vec![JobStatus {
                job: JobId(1),
                name: "a".to_string(),
                design: "dlx".to_string(),
                phase: "running",
                verdict: None,
                shards_done: 1,
                shards: 2,
            }]),
            Event::Metrics(ServiceMetrics::default()),
            Event::Stopped,
        ];
        for ev in &events {
            let line = ev.to_json();
            jsonv::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
    }

    #[test]
    fn the_done_report_extracts_byte_exactly() {
        let report = "{\"errors\": 8, \"by_stage\": [{\"stage\": 2}]}";
        let line = Event::Done {
            job: JobId(3),
            name: "n".to_string(),
            verdict: Verdict::Degraded,
            completed: 5,
            total: 8,
            report: report.to_string(),
        }
        .to_json();
        assert_eq!(extract_report(&line), Some(report));
        assert_eq!(extract_report("{\"ev\": \"stopped\"}"), None);
    }

    #[test]
    fn spec_config_applies_normalization_before_fingerprinting() {
        let spec = JobSpec {
            name: "n".to_string(),
            limit: Some(4),
            chaos: Some(ChaosSpec {
                panic_permille: 100,
                ..ChaosSpec::default()
            }),
            ..JobSpec::default()
        };
        let config = spec.to_campaign_config().expect("valid");
        assert!(config.chaos.is_some());
        assert!(
            !config.tg.ctrljust_memo,
            "chaos configs must come out of to_campaign_config pre-normalized"
        );
    }

    #[test]
    fn service_only_chaos_keeps_the_config_chaos_free() {
        let spec = JobSpec {
            name: "n".to_string(),
            limit: Some(4),
            chaos: Some(ChaosSpec {
                kill_permille: 500,
                stall_permille: 100,
                stall_ms: 10,
                ..ChaosSpec::default()
            }),
            ..JobSpec::default()
        };
        let config = spec.to_campaign_config().expect("valid");
        assert!(
            config.chaos.is_none(),
            "worker kills/stalls are supervisor business, not generator chaos"
        );
    }
}
