//! Job planning and queue state.
//!
//! A submission becomes a [`Job`]: a validated, normalized
//! [`CampaignConfig`], a fingerprint-guarded spool checkpoint, the error
//! population sliced into fixed-size [`Shard`]s, and the cancel flag the
//! workers' observers poll. The queue itself is just these jobs inside
//! the scheduler's one mutex — ordering policy lives in
//! [`crate::scheduler`].
//!
//! The spool file name is derived from the job *name* plus the config's
//! checkpoint fingerprint, so a resubmission after a service restart
//! finds its previous checkpoint (resume), while a same-named job with a
//! different configuration gets a fresh file instead of a refused open.

use crate::protocol::{ChaosSpec, JobSpec, Verdict};
use hltg_core::rng::SplitMix64;
use hltg_core::{Campaign, CampaignConfig, CheckpointLog};
use crate::build_model;
use std::ops::Range;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Instant;

/// Scheduler state of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ShardState {
    /// Waiting for a worker (possibly parked behind a backoff).
    Pending,
    /// Claimed by a worker attempt.
    Running,
    /// Every error of the range is checkpointed.
    Done,
    /// Given up (job cancelled or degraded).
    Abandoned,
}

/// One contiguous slice of a job's error population.
#[derive(Debug, Clone)]
pub(crate) struct Shard {
    /// Error-index range within the job's enumeration order.
    pub range: Range<usize>,
    /// Scheduler state.
    pub state: ShardState,
    /// Attempts started (claims), including the one currently running.
    pub attempts: u32,
    /// Earliest next claim, when parked behind an exponential backoff.
    pub not_before: Option<Instant>,
}

/// Job lifecycle as the scheduler sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum JobPhase {
    /// Shards are pending or running.
    Running,
    /// Generation is over (all shards done, or the job was cancelled or
    /// degraded and the last running attempt drained); waiting for a
    /// worker to run the finalizing merge.
    FinalizeQueued,
    /// A worker is producing the final report.
    Finalizing,
    /// Terminal; [`Job::done`] holds the outcome.
    Done,
}

/// Terminal outcome of a job.
#[derive(Debug, Clone, PartialEq)]
pub struct DoneInfo {
    /// Final verdict.
    pub verdict: Verdict,
    /// Errors with results in the report.
    pub completed: usize,
    /// Errors targeted.
    pub total: usize,
    /// `CampaignReport::to_json_deterministic()` — complete for
    /// [`Verdict::Ok`], the checkpointed prefix otherwise.
    pub report: String,
}

/// Deterministic service-level fault plan: worker kills and stalls at
/// error boundaries. Each decision is pure in `(seed, site, shard,
/// attempt, error index)` — wall-clock and thread timing never enter —
/// so a soak run's failure schedule reproduces bit-for-bit.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ServiceChaos {
    seed: u64,
    kill_permille: u32,
    stall_permille: u32,
    /// Injected stall length.
    pub stall: std::time::Duration,
}

const SITE_KILL: u64 = 0x6B69_6C6C;
const SITE_STALL: u64 = 0x7374_616C;

impl ServiceChaos {
    pub(crate) fn from_spec(spec: &ChaosSpec) -> Option<ServiceChaos> {
        (spec.kill_permille > 0 || spec.stall_permille > 0).then(|| ServiceChaos {
            seed: spec.seed,
            kill_permille: spec.kill_permille,
            stall_permille: spec.stall_permille,
            stall: crate::protocol::stall_duration(spec),
        })
    }

    fn draw(&self, site: u64, shard: usize, attempt: u32, index: usize) -> u64 {
        let mix = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(13)
            ^ site.wrapping_mul(0xBF58_476D_1CE4_E5B9)
            ^ (shard as u64) << 40
            ^ u64::from(attempt) << 20
            ^ index as u64;
        SplitMix64::new(mix).next_u64() % 1000
    }

    /// Whether the worker dies at this error boundary. Never fires on
    /// the attempt's first error, so even a certain kill makes one
    /// error of progress per attempt — a crash *loop*, which is the
    /// degradation scenario, not a wedged queue.
    pub(crate) fn kills(&self, shard: usize, attempt: u32, index: usize, first: usize) -> bool {
        index > first
            && self.kill_permille > 0
            && self.draw(SITE_KILL, shard, attempt, index) < u64::from(self.kill_permille)
    }

    /// Whether the worker goes silent (sleeps without heartbeating) at
    /// this error boundary.
    pub(crate) fn stalls(&self, shard: usize, attempt: u32, index: usize) -> bool {
        self.stall_permille > 0
            && self.draw(SITE_STALL, shard, attempt, index) < u64::from(self.stall_permille)
    }
}

/// One accepted submission, as held by the scheduler.
pub(crate) struct Job {
    pub id: u64,
    pub spec: JobSpec,
    /// Normalized config, with `checkpoint` pointing at the spool file —
    /// exactly what the finalizing `Campaign::run` executes.
    pub config: CampaignConfig,
    pub ckpt: Arc<CheckpointLog>,
    /// Cooperative cancellation: set by cancel requests, degradation and
    /// immediate shutdown; shard observers poll it at error boundaries.
    pub cancel: Arc<AtomicBool>,
    pub total: usize,
    pub shards: Vec<Shard>,
    pub phase: JobPhase,
    pub degraded: bool,
    pub cancelled: bool,
    pub done: Option<DoneInfo>,
    pub chaos: Option<ServiceChaos>,
}

impl Job {
    pub(crate) fn terminal(&self) -> bool {
        self.phase == JobPhase::Done
    }

    pub(crate) fn shards_done(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| s.state == ShardState::Done)
            .count()
    }

    pub(crate) fn phase_str(&self) -> &'static str {
        match self.phase {
            JobPhase::Running => "running",
            JobPhase::FinalizeQueued | JobPhase::Finalizing => "finalizing",
            JobPhase::Done => "done",
        }
    }
}

/// FNV-1a over a string, for stable spool file names.
fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Plans a submission into a [`Job`]: validates the design and config,
/// opens (or resumes) the spool checkpoint, slices the population into
/// shards. Runs outside the scheduler lock — it builds a model and
/// touches the filesystem.
pub(crate) fn plan_job(spec: &JobSpec, spool: &PathBuf, id: u64) -> Result<Job, String> {
    let config = spec
        .to_campaign_config()
        .map_err(|e| format!("invalid config: {e:?}"))?;
    let model =
        build_model(&spec.design).ok_or_else(|| format!("unknown design {:?}", spec.design))?;
    let fingerprint = Campaign::checkpoint_fingerprint(model.as_ref(), &config);
    std::fs::create_dir_all(spool).map_err(|e| format!("spool {}: {e}", spool.display()))?;
    let path = spool.join(format!(
        "job-{:016x}-{:016x}.jsonl",
        fnv(&spec.name),
        fnv(&fingerprint)
    ));
    let mut ckpt = match CheckpointLog::open(&path, &fingerprint) {
        Ok(log) => log,
        Err(first) => {
            // A stale or foreign file under our name: start fresh rather
            // than running without persistence (the service's resume
            // contract depends on the checkpoint).
            std::fs::remove_file(&path).ok();
            CheckpointLog::open(&path, &fingerprint)
                .map_err(|e| format!("checkpoint {}: {e} (after {first})", path.display()))?
        }
    };
    if let Some(io) = config.chaos.as_ref().and_then(|c| c.checkpoint_io()) {
        ckpt.set_io_chaos(io);
    }
    let total = Campaign::target_errors(model.as_ref(), &config).len();
    let granule = spec.shard_size.max(1);
    let shards: Vec<Shard> = (0..total)
        .step_by(granule)
        .map(|start| Shard {
            range: start..(start + granule).min(total),
            state: ShardState::Pending,
            attempts: 0,
            not_before: None,
        })
        .collect();
    let mut config = config;
    config.checkpoint = Some(path);
    let chaos = spec.chaos.as_ref().and_then(ServiceChaos::from_spec);
    Ok(Job {
        id,
        spec: spec.clone(),
        config,
        ckpt: Arc::new(ckpt),
        cancel: Arc::new(AtomicBool::new(false)),
        total,
        shards,
        phase: if total == 0 {
            JobPhase::FinalizeQueued
        } else {
            JobPhase::Running
        },
        degraded: false,
        cancelled: false,
        done: None,
        chaos,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::JobSpec;

    fn temp_spool(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hltg_serve_queue_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn planning_slices_the_population_into_shards() {
        let spool = temp_spool("slices");
        let spec = JobSpec {
            name: "slice".to_string(),
            limit: Some(7),
            shard_size: 3,
            ..JobSpec::default()
        };
        let job = plan_job(&spec, &spool, 1).expect("plans");
        assert_eq!(job.total, 7);
        let ranges: Vec<Range<usize>> = job.shards.iter().map(|s| s.range.clone()).collect();
        assert_eq!(ranges, vec![0..3, 3..6, 6..7]);
        assert_eq!(job.phase, JobPhase::Running);
        let _ = std::fs::remove_dir_all(&spool);
    }

    #[test]
    fn unknown_designs_are_refused() {
        let spool = temp_spool("unknown");
        let spec = JobSpec {
            name: "n".to_string(),
            design: "z80".to_string(),
            ..JobSpec::default()
        };
        let err = plan_job(&spec, &spool, 1).err().expect("refused");
        assert!(err.contains("z80"), "{err}");
        let _ = std::fs::remove_dir_all(&spool);
    }

    #[test]
    fn a_respec_under_the_same_name_gets_its_own_spool_file() {
        let spool = temp_spool("respec");
        let a = JobSpec {
            name: "same".to_string(),
            limit: Some(4),
            ..JobSpec::default()
        };
        // `limit` is deliberately outside the fingerprint (growing a
        // resumed campaign is a feature); flip a fingerprinted knob.
        let b = JobSpec {
            error_simulation: true,
            ..a.clone()
        };
        let ja = plan_job(&a, &spool, 1).expect("plans a");
        let jb = plan_job(&b, &spool, 2).expect("plans b");
        assert_ne!(ja.config.checkpoint, jb.config.checkpoint);
        let _ = std::fs::remove_dir_all(&spool);
    }

    #[test]
    fn kills_never_land_on_an_attempts_first_error() {
        let chaos = ServiceChaos {
            seed: 3,
            kill_permille: 1000,
            stall_permille: 0,
            stall: std::time::Duration::ZERO,
        };
        for attempt in 0..8 {
            assert!(!chaos.kills(0, attempt, 5, 5));
            assert!(chaos.kills(0, attempt, 6, 5));
        }
    }
}
