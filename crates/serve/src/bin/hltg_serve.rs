//! `hltg_serve` — the campaign service over stdio.
//!
//! Reads JSONL requests on stdin, writes JSONL events on stdout; EOF
//! drains and exits. `--soak` instead runs the built-in chaos soak
//! self-test (concurrent chaos jobs plus a mid-run kill/resume cycle,
//! each byte-compared against an uninterrupted single-threaded run) and
//! exits nonzero on any mismatch — the scriptable core of the
//! `check.sh` soak smoke.

use hltg_core::{Campaign, RunOptions};
use hltg_serve::build_model;
use hltg_serve::{serve_lines, ChaosSpec, Event, JobSpec, ServeConfig, Service, Verdict};
use std::path::PathBuf;
use std::time::Duration;

const USAGE: &str = "usage: hltg_serve [options]
  --workers N         worker threads (default 2)
  --spool DIR         checkpoint spool directory
                      (default <tmp>/hltg-serve-spool)
  --heartbeat-ms N    stalled-worker deadline (default 2000)
  --supervise-ms N    supervisor scan period (default 10)
  --max-attempts N    shard attempts before degrading (default 4)
  --backoff-ms N      first respawn backoff (default 8)
  --backoff-max-ms N  respawn backoff ceiling (default 500)
  --soak              run the chaos soak self-test and exit
  --help              this text

Protocol (one JSON object per line):
  {\"req\": \"submit\", \"name\": \"j1\", \"design\": \"dlx\", \"limit\": 8, ...}
  {\"req\": \"status\"} | {\"req\": \"metrics\"} | {\"req\": \"cancel\", \"job\": 1}
  {\"req\": \"shutdown\", \"drain\": true}";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    let value_of = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let parse_or_exit = |name: &str, v: String| -> u64 {
        v.parse().unwrap_or_else(|_| {
            eprintln!("{name}: cannot parse {v:?}");
            std::process::exit(2);
        })
    };
    let num = |name: &str| value_of(name).map(|v| parse_or_exit(name, v));

    let mut cfg = ServeConfig::default();
    if let Some(w) = num("--workers") {
        cfg.workers = w as usize;
    }
    if let Some(dir) = value_of("--spool") {
        cfg.spool = PathBuf::from(dir);
    }
    if let Some(ms) = num("--heartbeat-ms") {
        cfg.heartbeat_deadline = Duration::from_millis(ms);
    }
    if let Some(ms) = num("--supervise-ms") {
        cfg.supervise_every = Duration::from_millis(ms);
    }
    if let Some(n) = num("--max-attempts") {
        cfg.max_attempts = n as u32;
    }
    if let Some(ms) = num("--backoff-ms") {
        cfg.backoff_base = Duration::from_millis(ms);
    }
    if let Some(ms) = num("--backoff-max-ms") {
        cfg.backoff_max = Duration::from_millis(ms);
    }

    if args.iter().any(|a| a == "--soak") {
        std::process::exit(soak(&cfg));
    }

    let (service, events) = Service::start(cfg);
    let stdin = std::io::stdin();
    serve_lines(service, events, stdin.lock(), std::io::stdout());
}

/// The reference report for `spec`: an uninterrupted single-threaded
/// `Campaign::run` of the same normalized config, no checkpoint.
fn reference_report(spec: &JobSpec) -> String {
    let model = build_model(&spec.design).expect("soak uses registered designs");
    let config = spec.to_campaign_config().expect("soak specs are valid");
    Campaign::run(model.as_ref(), &config, RunOptions::default())
        .report
        .to_json_deterministic()
}

fn soak_spec(name: &str, design: &str, limit: usize, kill_permille: u32) -> JobSpec {
    JobSpec {
        name: name.to_string(),
        design: design.to_string(),
        limit: Some(limit),
        retry_rounds: 1,
        shard_size: 2,
        seed: 1,
        chaos: Some(ChaosSpec {
            seed: 23,
            panic_permille: 250,
            backtrack_permille: 100,
            ckpt_torn_permille: 200,
            ckpt_full_permille: 100,
            kill_permille,
            stall_permille: 60,
            stall_ms: 120,
        }),
        ..JobSpec::default()
    }
}

fn soak_cfg(spool: &PathBuf) -> ServeConfig {
    ServeConfig {
        workers: 4,
        spool: spool.clone(),
        heartbeat_deadline: Duration::from_millis(60),
        supervise_every: Duration::from_millis(5),
        max_attempts: 16,
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(16),
    }
}

/// The chaos soak self-test. Returns the process exit code.
fn soak(base: &ServeConfig) -> i32 {
    let spool = base.spool.join(format!("soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spool);
    let mut failures = 0;

    // Scenario 1: concurrent chaos jobs, byte-compared.
    let specs = [
        soak_spec("soak-dlx", "dlx", 8, 120),
        soak_spec("soak-dlx16", "dlx16", 6, 120),
        soak_spec("soak-lite", "dlx-lite", 6, 120),
    ];
    let (service, _events) = Service::start(soak_cfg(&spool));
    let jobs: Vec<_> = specs
        .iter()
        .map(|s| (s, service.submit(s).expect("soak submit")))
        .collect();
    for (spec, job) in jobs {
        let Some(done) = service.wait_done(job, Duration::from_secs(120)) else {
            eprintln!("soak: {} did not finish", spec.name);
            failures += 1;
            continue;
        };
        if done.verdict != Verdict::Ok {
            eprintln!("soak: {} ended {:?}", spec.name, done.verdict);
            failures += 1;
            continue;
        }
        if done.report == reference_report(spec) {
            eprintln!("soak: {} report matches the uninterrupted run", spec.name);
        } else {
            eprintln!("soak: {} report DIVERGED from the uninterrupted run", spec.name);
            failures += 1;
        }
    }
    let m = service.metrics();
    eprintln!(
        "soak: {} respawns, {} stalls detected, {} chaos kills, {} resumes",
        m.respawns, m.stalls_detected, m.chaos_kills, m.errors_resumed
    );
    service.drain();

    // Scenario 2: kill the service mid-run, resume in a fresh one.
    let spec = soak_spec("soak-resume", "dlx", 10, 0);
    let (service, events) = Service::start(soak_cfg(&spool));
    let _job = service.submit(&spec).expect("soak submit");
    let mut records = 0;
    for ev in events.iter() {
        if matches!(ev, Event::Record { .. }) {
            records += 1;
            if records >= 3 {
                break;
            }
        }
    }
    service.shutdown_now(); // mid-run kill; the checkpoint survives
    let (service, _events) = Service::start(soak_cfg(&spool));
    let job = service.submit(&spec).expect("soak resubmit");
    match service.wait_done(job, Duration::from_secs(120)) {
        Some(done) if done.verdict == Verdict::Ok && done.report == reference_report(&spec) => {
            eprintln!("soak: kill/resume report matches the uninterrupted run");
        }
        Some(done) => {
            eprintln!(
                "soak: kill/resume DIVERGED (verdict {:?})",
                done.verdict
            );
            failures += 1;
        }
        None => {
            eprintln!("soak: kill/resume did not finish");
            failures += 1;
        }
    }
    service.drain();

    // Scenario 3: a crash-looping job must degrade, not hang.
    let mut cfg = soak_cfg(&spool);
    cfg.max_attempts = 3;
    let spec = JobSpec {
        chaos: Some(ChaosSpec {
            kill_permille: 1000,
            ..soak_spec("soak-degrade", "dlx", 6, 0).chaos.unwrap()
        }),
        ..soak_spec("soak-degrade", "dlx", 6, 0)
    };
    let (service, _events) = Service::start(cfg);
    let job = service.submit(&spec).expect("soak submit");
    match service.wait_done(job, Duration::from_secs(120)) {
        Some(done) if done.verdict == Verdict::Degraded && done.completed > 0 => {
            eprintln!(
                "soak: crash loop degraded gracefully with {}/{} errors",
                done.completed, done.total
            );
        }
        Some(done) => {
            eprintln!(
                "soak: crash loop ended {:?} with {}/{} errors (wanted degraded with partial results)",
                done.verdict, done.completed, done.total
            );
            failures += 1;
        }
        None => {
            eprintln!("soak: crash loop hung the service");
            failures += 1;
        }
    }
    service.drain();

    let _ = std::fs::remove_dir_all(&spool);
    if failures == 0 {
        println!("soak ok");
        0
    } else {
        println!("soak failed: {failures} scenario(s)");
        1
    }
}
