//! The shared worker pool: claim, run, settle.
//!
//! All scheduler state lives in one mutex ([`Shared::state`]) with a
//! condvar for wakeups; attempts and finalizing merges run *outside*
//! the lock. A worker thread loops claim → run → settle:
//!
//! * **claim** picks the first runnable piece of work in job-id order —
//!   a pending shard whose backoff has expired, or a job whose
//!   generation is over and needs its finalizing merge.
//! * **run** executes [`Campaign::run_shard`] under `catch_unwind`,
//!   with a [`ShardObserver`] that heartbeats, streams `record` events,
//!   polls the cancel/condemned flags and takes the job's injected
//!   kills and stalls.
//! * **settle** classifies how the attempt ended. A completed shard may
//!   ready the job for finalization; a death (panic or injected kill)
//!   retires this thread, requeues the shard behind an exponential
//!   backoff — or degrades the job once the attempt budget is burned —
//!   and spawns a replacement worker.
//!
//! Respawned attempts resume from the checkpoint: completed chains
//! replay instantly (the log's live entry map), so a kill costs at most
//! the error that was in flight. The finalizing merge is a plain
//! single-threaded [`Campaign::run`] over the same checkpoint — every
//! generation is a replay hit, and the resulting report is
//! byte-identical to an uninterrupted run, which `tests/soak.rs` pins.

use crate::protocol::{Event, JobId, ServiceMetrics, Verdict};
use crate::queue::{DoneInfo, Job, JobPhase, ServiceChaos, ShardState};
use crate::supervisor::ServeConfig;
use hltg_core::instrument::Counters;
use hltg_core::{
    Campaign, CampaignConfig, CampaignReport, CheckpointLog, ErrorRecord, Outcome, RunOptions,
    ShardControl, ShardObserver,
};
use crate::build_model;
use std::collections::BTreeMap;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Sentinel shard index marking a slot as busy with a finalizing merge
/// rather than a shard attempt. The supervisor exempts it from the
/// heartbeat deadline: the merge replays the checkpoint without
/// observer callbacks, so it has no natural beat.
pub(crate) const FINALIZE: usize = usize::MAX;

/// Per-worker-slot control block, shared between the worker thread and
/// the supervisor.
#[derive(Debug, Default)]
pub(crate) struct WorkerFlags {
    /// Last heartbeat, in milliseconds since the service epoch.
    pub beat_ms: AtomicU64,
    /// Set by the supervisor when the slot missed its deadline: the
    /// shard has been taken away and a replacement spawned; the thread
    /// must retire at its next boundary.
    pub condemned: AtomicBool,
}

impl WorkerFlags {
    fn beat(&self, now_ms: u64) {
        self.beat_ms.store(now_ms, Ordering::Relaxed);
    }
}

/// One worker slot. Slots are never removed — a dead slot keeps its
/// index so `worker` fields in past events stay meaningful.
pub(crate) struct WorkerSlot {
    pub flags: Arc<WorkerFlags>,
    /// `(job id, shard index)` while running (`FINALIZE` for a merge).
    pub busy: Option<(u64, usize)>,
    pub alive: bool,
}

/// Cumulative service counters (lock-free; see
/// [`crate::protocol::ServiceMetrics`] for the snapshot).
#[derive(Debug, Default)]
pub(crate) struct ServiceCounters {
    pub jobs_submitted: AtomicU64,
    pub jobs_ok: AtomicU64,
    pub jobs_degraded: AtomicU64,
    pub jobs_cancelled: AtomicU64,
    pub shard_attempts: AtomicU64,
    pub shards_completed: AtomicU64,
    pub respawns: AtomicU64,
    pub stalls_detected: AtomicU64,
    pub chaos_kills: AtomicU64,
    pub chaos_stalls: AtomicU64,
    pub records_streamed: AtomicU64,
    pub errors_resumed: AtomicU64,
}

impl ServiceCounters {
    pub(crate) fn snapshot(&self) -> ServiceMetrics {
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ServiceMetrics {
            jobs_submitted: get(&self.jobs_submitted),
            jobs_ok: get(&self.jobs_ok),
            jobs_degraded: get(&self.jobs_degraded),
            jobs_cancelled: get(&self.jobs_cancelled),
            shard_attempts: get(&self.shard_attempts),
            shards_completed: get(&self.shards_completed),
            respawns: get(&self.respawns),
            stalls_detected: get(&self.stalls_detected),
            chaos_kills: get(&self.chaos_kills),
            chaos_stalls: get(&self.chaos_stalls),
            records_streamed: get(&self.records_streamed),
            errors_resumed: get(&self.errors_resumed),
        }
    }
}

/// Everything behind the scheduler mutex.
pub(crate) struct State {
    pub jobs: BTreeMap<u64, Job>,
    pub next_job: u64,
    pub slots: Vec<WorkerSlot>,
    pub live_workers: usize,
    /// No new submissions; workers retire once every job is terminal.
    pub draining: bool,
    /// Workers and the supervisor retire at their next boundary.
    pub stop_now: bool,
}

impl State {
    pub(crate) fn all_terminal(&self) -> bool {
        self.jobs.values().all(Job::terminal)
    }
}

/// The service's shared core: configuration, scheduler state, event
/// channel and counters.
pub(crate) struct Shared {
    pub cfg: ServeConfig,
    pub epoch: Instant,
    pub state: Mutex<State>,
    pub work: Condvar,
    /// `None` once the service stopped (no further events).
    pub events: Mutex<Option<Sender<Event>>>,
    /// Worker/supervisor thread handles, joined at shutdown. Lock order:
    /// `state` before `handles`, never the reverse.
    pub handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    pub counters: ServiceCounters,
}

impl Shared {
    pub(crate) fn lock_state(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    pub(crate) fn emit(&self, ev: Event) {
        let guard = self.events.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(tx) = guard.as_ref() {
            let _ = tx.send(ev);
        }
    }
}

/// Spawns a new worker thread and its slot; `state` is already locked.
/// Returns the new slot index.
pub(crate) fn spawn_worker_locked(shared: &Arc<Shared>, st: &mut State) -> usize {
    let flags = Arc::new(WorkerFlags::default());
    flags.beat(shared.epoch.elapsed().as_millis() as u64);
    st.slots.push(WorkerSlot {
        flags,
        busy: None,
        alive: true,
    });
    st.live_workers += 1;
    let me = st.slots.len() - 1;
    let shared2 = Arc::clone(shared);
    let handle = std::thread::spawn(move || worker_main(shared2, me));
    shared
        .handles
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(handle);
    me
}

/// Marks slot `me` dead; `state` is already locked.
fn retire_locked(st: &mut State, me: usize) {
    if st.slots[me].alive {
        st.slots[me].alive = false;
        st.live_workers -= 1;
    }
    st.slots[me].busy = None;
}

/// What a worker claimed.
enum Task {
    Shard(u64, usize),
    Finalize(u64),
}

/// How a shard attempt ended, as classified by the observer and the
/// unwind boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AttemptEnd {
    /// Ran to the end of its range.
    Completed,
    /// The job's cancel flag stopped it (cancel request, degradation or
    /// immediate shutdown).
    Cancelled,
    /// The supervisor condemned this worker mid-attempt.
    Condemned,
    /// An injected chaos kill: the worker "dies" here.
    Killed,
    /// A real panic escaped the attempt.
    Crashed,
}

/// The worker thread body: claim → run → settle until retired.
pub(crate) fn worker_main(shared: Arc<Shared>, me: usize) {
    loop {
        let Some(task) = claim(&shared, me) else {
            return;
        };
        let keep_going = match task {
            Task::Shard(job, shard) => run_shard_attempt(&shared, me, job, shard),
            Task::Finalize(job) => {
                finalize_job(&shared, me, job);
                true
            }
        };
        if !keep_going {
            return;
        }
    }
}

/// Blocks until there is work for slot `me`, the pool is stopping, or
/// the drain completes. `None` retires the thread.
fn claim(shared: &Arc<Shared>, me: usize) -> Option<Task> {
    let mut st = shared.lock_state();
    loop {
        if st.stop_now || st.slots[me].flags.condemned.load(Ordering::Relaxed) {
            retire_locked(&mut st, me);
            shared.work.notify_all();
            return None;
        }
        if let Some(task) = pick(shared, &mut st, me) {
            return Some(task);
        }
        if st.draining && st.all_terminal() {
            retire_locked(&mut st, me);
            shared.work.notify_all();
            return None;
        }
        // A short timeout doubles as the backoff clock: parked shards
        // become claimable without an explicit wakeup.
        let (guard, _) = shared
            .work
            .wait_timeout(st, Duration::from_millis(5))
            .unwrap_or_else(PoisonError::into_inner);
        st = guard;
    }
}

/// First runnable piece of work in job-id order, marking it claimed.
fn pick(shared: &Arc<Shared>, st: &mut State, me: usize) -> Option<Task> {
    let now = Instant::now();
    let now_ms = shared.now_ms();
    let mut claimed = None;
    for job in st.jobs.values_mut() {
        match job.phase {
            JobPhase::Done | JobPhase::Finalizing => continue,
            JobPhase::FinalizeQueued => {
                job.phase = JobPhase::Finalizing;
                claimed = Some(Task::Finalize(job.id));
                break;
            }
            JobPhase::Running => {}
        }
        if job.cancel.load(Ordering::Relaxed) {
            // Cancelled (or degraded) mid-generation: fold up the queue.
            // Pending shards are abandoned here; once the last running
            // attempt drains, the job is ready for its partial report.
            for shard in &mut job.shards {
                if shard.state == ShardState::Pending {
                    shard.state = ShardState::Abandoned;
                }
            }
            if job.shards.iter().all(|s| s.state != ShardState::Running) {
                job.phase = JobPhase::Finalizing;
                claimed = Some(Task::Finalize(job.id));
                break;
            }
            continue;
        }
        let runnable = job.shards.iter_mut().enumerate().find(|(_, s)| {
            s.state == ShardState::Pending && s.not_before.is_none_or(|t| t <= now)
        });
        if let Some((idx, shard)) = runnable {
            shard.state = ShardState::Running;
            shard.attempts += 1;
            shard.not_before = None;
            claimed = Some(Task::Shard(job.id, idx));
            break;
        }
    }
    match &claimed {
        Some(Task::Shard(job, shard)) => {
            st.slots[me].busy = Some((*job, *shard));
            st.slots[me].flags.beat(now_ms);
            shared.counters.shard_attempts.fetch_add(1, Ordering::Relaxed);
        }
        Some(Task::Finalize(job)) => {
            st.slots[me].busy = Some((*job, FINALIZE));
            st.slots[me].flags.beat(now_ms);
        }
        None => {}
    }
    claimed
}

/// The observer a worker attempt drives [`Campaign::run_shard`] with.
struct WorkerObserver<'a> {
    shared: &'a Shared,
    flags: &'a WorkerFlags,
    cancel: &'a AtomicBool,
    chaos: Option<ServiceChaos>,
    job: JobId,
    shard: usize,
    attempt: u32,
    first_index: usize,
    worker: usize,
    end: AttemptEnd,
}

impl ShardObserver for WorkerObserver<'_> {
    fn before_error(&mut self, index: usize, _id: u64) -> ShardControl {
        self.flags.beat(self.shared.now_ms());
        if self.flags.condemned.load(Ordering::Relaxed) {
            self.end = AttemptEnd::Condemned;
            return ShardControl::Stop;
        }
        if self.cancel.load(Ordering::Relaxed) {
            self.end = AttemptEnd::Cancelled;
            return ShardControl::Stop;
        }
        if let Some(chaos) = self.chaos {
            if chaos.stalls(self.shard, self.attempt, index) {
                self.shared
                    .counters
                    .chaos_stalls
                    .fetch_add(1, Ordering::Relaxed);
                // Go silent: no heartbeat for the whole stall — the
                // supervisor's deadline detection must catch this.
                std::thread::sleep(chaos.stall);
                if self.flags.condemned.load(Ordering::Relaxed) {
                    self.end = AttemptEnd::Condemned;
                    return ShardControl::Stop;
                }
            }
            if chaos.kills(self.shard, self.attempt, index, self.first_index) {
                self.shared
                    .counters
                    .chaos_kills
                    .fetch_add(1, Ordering::Relaxed);
                self.end = AttemptEnd::Killed;
                return ShardControl::Stop;
            }
        }
        ShardControl::Continue
    }

    fn after_error(&mut self, index: usize, id: u64, outcome: &Outcome, round: u32, resumed: bool) {
        self.flags.beat(self.shared.now_ms());
        self.shared
            .counters
            .records_streamed
            .fetch_add(1, Ordering::Relaxed);
        if resumed {
            self.shared
                .counters
                .errors_resumed
                .fetch_add(1, Ordering::Relaxed);
        }
        self.shared.emit(Event::Record {
            job: self.job,
            index,
            id,
            round,
            detected: outcome.is_detected(),
            resumed,
            worker: self.worker,
        });
    }
}

/// Context cloned out of the locked state for one attempt.
struct AttemptCtx {
    config: CampaignConfig,
    design: String,
    range: Range<usize>,
    ckpt: Arc<CheckpointLog>,
    cancel: Arc<AtomicBool>,
    chaos: Option<ServiceChaos>,
    attempt: u32,
    flags: Arc<WorkerFlags>,
}

/// Runs one shard attempt end to end. Returns `false` when this worker
/// thread must retire (it "died": condemned, killed or crashed — a
/// replacement has been spawned where needed).
fn run_shard_attempt(shared: &Arc<Shared>, me: usize, job_id: u64, shard_idx: usize) -> bool {
    let ctx = {
        let st = shared.lock_state();
        let Some(job) = st.jobs.get(&job_id) else {
            return true;
        };
        AttemptCtx {
            config: job.config.clone(),
            design: job.spec.design.clone(),
            range: job.shards[shard_idx].range.clone(),
            ckpt: Arc::clone(&job.ckpt),
            cancel: Arc::clone(&job.cancel),
            chaos: job.chaos,
            attempt: job.shards[shard_idx].attempts,
            flags: Arc::clone(&st.slots[me].flags),
        }
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let model = build_model(&ctx.design).expect("design validated at submit");
        let mut obs = WorkerObserver {
            shared: shared.as_ref(),
            flags: &ctx.flags,
            cancel: &ctx.cancel,
            chaos: ctx.chaos,
            job: JobId(job_id),
            shard: shard_idx,
            attempt: ctx.attempt,
            first_index: ctx.range.start,
            worker: me,
            end: AttemptEnd::Completed,
        };
        Campaign::run_shard(
            model.as_ref(),
            &ctx.config,
            ctx.range.clone(),
            &ctx.ckpt,
            &mut obs,
        );
        obs.end
    }));
    let end = outcome.unwrap_or(AttemptEnd::Crashed);
    settle(shared, me, job_id, shard_idx, end)
}

/// Books the end of an attempt back into the scheduler state. Returns
/// `false` when the worker thread must retire.
fn settle(shared: &Arc<Shared>, me: usize, job_id: u64, shard_idx: usize, end: AttemptEnd) -> bool {
    let mut st = shared.lock_state();
    st.slots[me].busy = None;
    if st.slots[me].flags.condemned.load(Ordering::Relaxed) || end == AttemptEnd::Condemned {
        // The supervisor already requeued the shard and spawned a
        // replacement; whatever this attempt managed is safely in the
        // checkpoint. Just retire.
        retire_locked(&mut st, me);
        shared.work.notify_all();
        return false;
    }
    let Some(job) = st.jobs.get_mut(&job_id) else {
        return true;
    };
    let mut retire = false;
    match end {
        AttemptEnd::Condemned => unreachable!("handled above"),
        AttemptEnd::Completed => {
            job.shards[shard_idx].state = ShardState::Done;
            shared
                .counters
                .shards_completed
                .fetch_add(1, Ordering::Relaxed);
            if job.shards.iter().all(|s| s.state == ShardState::Done) {
                job.phase = JobPhase::FinalizeQueued;
            }
        }
        AttemptEnd::Cancelled => {
            job.shards[shard_idx].state = ShardState::Abandoned;
            // pick() completes the fold-up and queues the finalize.
        }
        AttemptEnd::Killed | AttemptEnd::Crashed => {
            let reason = if end == AttemptEnd::Killed { "kill" } else { "crash" };
            requeue_or_degrade_locked(shared, job, shard_idx, me, reason);
            // The worker itself died with the attempt: retire this
            // thread and keep the pool at strength.
            retire_locked(&mut st, me);
            spawn_worker_locked(shared, &mut st);
            retire = true;
        }
    }
    shared.work.notify_all();
    !retire
}

/// After a worker death: park the shard behind an exponential backoff
/// for another attempt, or — once the attempt budget is burned — degrade
/// the whole job to a partial-results verdict. Also the supervisor's
/// path for condemned stalls. `state` is already locked (the `job` is a
/// borrow of it).
pub(crate) fn requeue_or_degrade_locked(
    shared: &Arc<Shared>,
    job: &mut Job,
    shard_idx: usize,
    worker: usize,
    reason: &'static str,
) {
    let attempts = job.shards[shard_idx].attempts;
    if attempts >= shared.cfg.max_attempts {
        job.degraded = true;
        job.cancel.store(true, Ordering::Relaxed);
        job.shards[shard_idx].state = ShardState::Abandoned;
        shared.emit(Event::Degraded {
            job: JobId(job.id),
            shard: shard_idx,
            attempts,
        });
        return;
    }
    let backoff = backoff_for(&shared.cfg, attempts);
    job.shards[shard_idx].state = ShardState::Pending;
    job.shards[shard_idx].not_before = Some(Instant::now() + backoff);
    shared.counters.respawns.fetch_add(1, Ordering::Relaxed);
    shared.emit(Event::Respawn {
        job: JobId(job.id),
        shard: shard_idx,
        worker,
        attempt: attempts,
        reason,
        backoff_ms: backoff.as_millis() as u64,
    });
}

/// Bounded exponential backoff: `base * 2^(attempts-1)`, capped.
fn backoff_for(cfg: &ServeConfig, attempts: u32) -> Duration {
    let factor = 1u32 << attempts.saturating_sub(1).min(16);
    cfg.backoff_base
        .saturating_mul(factor)
        .min(cfg.backoff_max)
}

/// Produces the job's terminal report. For a healthy job this is the
/// finalizing merge: a single-threaded [`Campaign::run`] over the shared
/// checkpoint — every generation replays, and the report is
/// byte-identical to an uninterrupted run. For a degraded or cancelled
/// job it is the checkpointed prefix, assembled without any generation.
fn finalize_job(shared: &Arc<Shared>, me: usize, job_id: u64) {
    let (config, design, name, ckpt, total, degraded, cancelled) = {
        let st = shared.lock_state();
        let Some(job) = st.jobs.get(&job_id) else {
            return;
        };
        (
            job.config.clone(),
            job.spec.design.clone(),
            job.spec.name.clone(),
            Arc::clone(&job.ckpt),
            job.total,
            job.degraded,
            job.cancelled || (job.cancel.load(Ordering::Relaxed) && !job.degraded),
        )
    };
    let healthy = !degraded && !cancelled;
    let done = catch_unwind(AssertUnwindSafe(|| {
        let model = build_model(&design).expect("design validated at submit");
        if healthy {
            let run = Campaign::run(model.as_ref(), &config, RunOptions::default());
            DoneInfo {
                verdict: Verdict::Ok,
                completed: total,
                total,
                report: run.report.to_json_deterministic(),
            }
        } else {
            let verdict = if degraded {
                Verdict::Degraded
            } else {
                Verdict::Cancelled
            };
            let (report, completed) = partial_report(model.as_ref(), &config, &ckpt);
            DoneInfo {
                verdict,
                completed,
                total,
                report,
            }
        }
    }))
    .unwrap_or_else(|_| DoneInfo {
        verdict: Verdict::Degraded,
        completed: 0,
        total,
        report: "{}".to_string(),
    });
    let counter = match done.verdict {
        Verdict::Ok => &shared.counters.jobs_ok,
        Verdict::Degraded => &shared.counters.jobs_degraded,
        Verdict::Cancelled => &shared.counters.jobs_cancelled,
    };
    counter.fetch_add(1, Ordering::Relaxed);
    shared.emit(Event::Done {
        job: JobId(job_id),
        name,
        verdict: done.verdict,
        completed: done.completed,
        total: done.total,
        report: done.report.clone(),
    });
    let mut st = shared.lock_state();
    if let Some(job) = st.jobs.get_mut(&job_id) {
        job.phase = JobPhase::Done;
        job.done = Some(done);
    }
    st.slots[me].busy = None;
    shared.work.notify_all();
}

/// The partial report of a degraded or cancelled job: one record per
/// target error whose round-0 generation made it into the checkpoint,
/// with the retry chain walked exactly as the merge's retry pass would
/// have. No generation runs — this is pure bookkeeping over persisted
/// entries, so a crash-looping job still terminates promptly.
fn partial_report(
    model: &dyn hltg_netlist::ProcessorModel,
    config: &CampaignConfig,
    ckpt: &CheckpointLog,
) -> (String, usize) {
    let errors = Campaign::target_errors(model, config);
    let mut records = Vec::new();
    for error in &errors {
        let id = u64::from(error.id.0);
        let Some(e0) = ckpt.lookup(id, 0) else {
            continue;
        };
        let mut outcome = e0.outcome;
        let mut seconds = e0.seconds;
        let mut round = 0u32;
        if !e0.redundant {
            while round < config.retry.rounds && !outcome.is_detected() {
                match ckpt.lookup(id, round + 1) {
                    Some(er) => {
                        round += 1;
                        seconds += er.seconds;
                        outcome = er.outcome;
                    }
                    None => break,
                }
            }
        }
        records.push(ErrorRecord {
            error: error.clone(),
            outcome,
            redundant: e0.redundant,
            by_simulation: false,
            seconds,
            round,
        });
    }
    let completed = records.len();
    let campaign = Campaign { records };
    let report = CampaignReport {
        stats: campaign.stats(),
        counters: Counters::new().snapshot(),
        wall_seconds: 0.0,
        num_threads: 1,
        deadline_exceeded: 0,
    };
    (report.to_json_deterministic(), completed)
}
