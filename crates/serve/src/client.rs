//! The line-protocol pump and a small client.
//!
//! [`serve_lines`] runs a [`Service`] against any `BufRead`/`Write`
//! pair — stdin/stdout for the `hltg_serve` binary, in-memory buffers
//! for the protocol tests. Requests are handled inline on the reader
//! thread; events are pumped to the writer from a dedicated thread, so
//! a slow client never blocks the scheduler.
//!
//! [`Client`] is the other side for embedders and tests: it formats
//! request lines and picks events back out of the response stream.

use crate::protocol::{extract_report, parse_request, JobId, JobSpec, Request};
use crate::supervisor::Service;
use std::io::{BufRead, Write};
use std::sync::mpsc::Receiver;

/// Drives `service` over a line protocol until EOF or a `shutdown`
/// request, then shuts the service down (drain by default) and writes
/// the final `stopped` line. Returns the writer.
pub fn serve_lines<R, W>(
    service: Service,
    events: Receiver<crate::protocol::Event>,
    input: R,
    output: W,
) -> W
where
    R: BufRead,
    W: Write + Send + 'static,
{
    let pump = std::thread::spawn(move || {
        let mut out = output;
        for ev in events {
            // A broken pipe just stops the pump; the service itself is
            // torn down by the request loop.
            if writeln!(out, "{}", ev.to_json()).is_err() {
                break;
            }
            let _ = out.flush();
        }
        out
    });
    let mut drain = true;
    for line in input.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(&line) {
            Ok(Request::Submit(spec)) => {
                // submit() emits accepted/rejected onto the stream.
                let _ = service.submit(&spec);
            }
            Ok(Request::Status) => service.emit_status(),
            Ok(Request::Metrics) => service.emit_metrics(),
            Ok(Request::Cancel(job)) => {
                service.cancel(job);
            }
            Ok(Request::Shutdown { drain: d }) => {
                drain = d;
                break;
            }
            Err(reason) => {
                // Parse errors have no job name; reuse the rejected
                // event so the client sees *something* for the bad line.
                service.emit_event(crate::protocol::Event::Rejected {
                    name: String::new(),
                    reason,
                });
            }
        }
    }
    if drain {
        service.drain();
    } else {
        service.shutdown_now();
    }
    // The service dropped its event sender; the pump exits once the
    // queue is flushed.
    let mut out = pump.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
    let _ = writeln!(out, "{}", crate::protocol::Event::Stopped.to_json());
    let _ = out.flush();
    out
}

/// Client-side helpers over a response stream: format request lines,
/// scan events.
#[derive(Debug, Default)]
pub struct Client;

impl Client {
    /// The `submit` line for `spec` (no trailing newline).
    #[must_use]
    pub fn submit_line(spec: &JobSpec) -> String {
        Request::Submit(Box::new(spec.clone())).to_json()
    }

    /// The `shutdown` line.
    #[must_use]
    pub fn shutdown_line(drain: bool) -> String {
        Request::Shutdown { drain }.to_json()
    }

    /// The `status` line.
    #[must_use]
    pub fn status_line() -> String {
        Request::Status.to_json()
    }

    /// The `metrics` line.
    #[must_use]
    pub fn metrics_line() -> String {
        Request::Metrics.to_json()
    }

    /// The `cancel` line for `job`.
    #[must_use]
    pub fn cancel_line(job: JobId) -> String {
        Request::Cancel(job).to_json()
    }

    /// Finds the `done` event for the job named `name` in a response
    /// transcript and returns `(verdict, byte-exact report)`.
    #[must_use]
    pub fn done_of<'t>(transcript: &'t str, name: &str) -> Option<(&'t str, &'t str)> {
        let needle = "\"ev\": \"done\", \"job\": ";
        for line in transcript.lines() {
            if !line.contains(needle) {
                continue;
            }
            if !line.contains(&format!("\"name\": \"{name}\"")) {
                continue;
            }
            let verdict = line
                .split("\"verdict\": \"")
                .nth(1)
                .and_then(|rest| rest.split('"').next())?;
            let report = extract_report(line)?;
            return Some((verdict, report));
        }
        None
    }
}
