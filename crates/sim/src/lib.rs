//! Cycle-accurate simulation of [`hltg_netlist::Design`]s.
//!
//! The simulator evaluates the word-level datapath and the gate-level
//! controller *together*: the combined combinational graph (datapath modules,
//! controller gates, and the control/status/instruction-bit bindings between
//! them) is levelized once into a [`schedule::Schedule`], then each call to
//! [`machine::Machine::step`] evaluates one clock cycle and commits all
//! sequential state (pipe registers, control flip-flops, register files,
//! memories).
//!
//! Design errors are injected with an [`inject::Injection`] that forces one
//! bit of one datapath bus — the *bus single-stuck-line* model. The
//! [`dual::DualSim`] runs a good and a bad machine in lockstep and reports
//! the first observable discrepancy, which is the detection criterion for
//! verification tests.
//!
//! The [`tv`] module provides the three-valued (0/1/X) logic used by the
//! test generator's implication engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dual;
pub mod inject;
pub mod machine;
pub mod packed;
pub mod schedule;
pub mod tv;

pub use dual::{BatchScreen, Discrepancy, DualSim};
pub use inject::{ErrorModel, Injection, LaneInjection, Polarity};
pub use packed::{PackedScreen, MAX_LANES};
pub use machine::{Machine, MachineSnapshot, MachineState, ObservedOutputs};
pub use schedule::{Schedule, SimError};
pub use tv::V3;
