//! Levelization of the combined combinational graph of a design.
//!
//! The datapath and controller interact combinationally through control,
//! status and instruction-bit bindings, so a correct evaluation order must be
//! computed over the *combined* graph. Sequential elements (datapath pipe
//! registers, controller flip-flops) source their cycle-start values from
//! state and therefore break all timing arcs.

use hltg_netlist::ctl::{CtlNetId, CtlOp};
use hltg_netlist::dp::{DpModId, DpNetKind, DpOp};
use hltg_netlist::Design;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A node of the combined combinational graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Node {
    /// A controller net (gate, input or constant; flip-flops are excluded).
    Ctl(CtlNetId),
    /// A datapath module (pipe registers are excluded; architectural reads
    /// are combinational and included; write sinks are included last).
    Dp(DpModId),
}

/// Errors raised while preparing or running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The combined combinational graph has a cycle (e.g. a status signal
    /// feeding control logic that feeds back into its own cone).
    CombinationalCycle {
        /// Human-readable description of a node on the cycle.
        node: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CombinationalCycle { node } => {
                write!(f, "combinational cycle through `{node}`")
            }
        }
    }
}

impl Error for SimError {}

/// A topological evaluation order for one clock cycle of a design.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Nodes in dependency order.
    pub order: Vec<Node>,
    /// For each datapath ctrl net: the controller net bound to it.
    pub ctrl_of_dp: HashMap<hltg_netlist::dp::DpNetId, CtlNetId>,
}

impl Schedule {
    /// Levelizes the combined combinational graph of `design`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CombinationalCycle`] if the cross-domain graph is
    /// cyclic.
    pub fn build(design: &Design) -> Result<Schedule, SimError> {
        let nc = design.ctl.net_count();
        let nm = design.dp.module_count();
        let total = nc + nm;
        let ctl_idx = |id: CtlNetId| id.0 as usize;
        let dp_idx = |id: DpModId| nc + id.0 as usize;

        let mut ctrl_of_dp = HashMap::new();
        for b in &design.ctrl_binds {
            ctrl_of_dp.insert(b.dp, b.ctl);
        }
        let mut sts_src = HashMap::new();
        for b in &design.sts_binds {
            sts_src.insert(b.ctl, b.dp);
        }
        let mut cpi_src = HashMap::new();
        for b in &design.cpi_binds {
            cpi_src.insert(b.ctl, b.dp);
        }

        // `active[i]`: the node participates in combinational evaluation.
        let mut active = vec![false; total];
        for (id, net) in design.ctl.iter_nets() {
            active[ctl_idx(id)] = !net.op.is_ff();
        }
        for (id, m) in design.dp.iter_modules() {
            active[dp_idx(id)] = !matches!(m.op, DpOp::Reg(_));
        }

        // Dependency edges: dep -> node.
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); total];
        let mut indeg = vec![0usize; total];
        let mut add_edge = |from: usize, to: usize, succs: &mut Vec<Vec<usize>>| {
            succs[from].push(to);
            indeg[to] += 1;
        };

        // A datapath net's producing node, if combinational.
        let dp_net_dep = |net: hltg_netlist::dp::DpNetId| -> Option<usize> {
            let n = design.dp.net(net);
            match n.kind {
                DpNetKind::Internal => {
                    let d = n.driver.expect("validated");
                    if matches!(design.dp.module(d).op, DpOp::Reg(_)) {
                        None
                    } else {
                        Some(dp_idx(d))
                    }
                }
                DpNetKind::Ctrl => ctrl_of_dp.get(&net).and_then(|&c| {
                    if design.ctl.net(c).op.is_ff() {
                        None
                    } else {
                        Some(ctl_idx(c))
                    }
                }),
                DpNetKind::Input => None,
            }
        };

        for (id, net) in design.ctl.iter_nets() {
            if net.op.is_ff() {
                continue;
            }
            match net.op {
                CtlOp::Input(_) => {
                    // CPI/STS inputs depend on their bound datapath net.
                    let src = sts_src.get(&id).or_else(|| cpi_src.get(&id));
                    if let Some(&dpn) = src {
                        if let Some(dep) = dp_net_dep(dpn) {
                            add_edge(dep, ctl_idx(id), &mut succs);
                        }
                    }
                }
                _ => {
                    for &i in &net.inputs {
                        if !design.ctl.net(i).op.is_ff() {
                            add_edge(ctl_idx(i), ctl_idx(id), &mut succs);
                        }
                    }
                }
            }
        }
        for (id, m) in design.dp.iter_modules() {
            if matches!(m.op, DpOp::Reg(_)) {
                continue;
            }
            for &inp in m.inputs.iter().chain(m.ctrls.iter()) {
                if let Some(dep) = dp_net_dep(inp) {
                    add_edge(dep, dp_idx(id), &mut succs);
                }
            }
        }

        // Kahn's algorithm.
        let mut queue: Vec<usize> = (0..total).filter(|&i| active[i] && indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(queue.len());
        while let Some(i) = queue.pop() {
            order.push(if i < nc {
                Node::Ctl(CtlNetId(i as u32))
            } else {
                Node::Dp(DpModId((i - nc) as u32))
            });
            for &s in &succs[i] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push(s);
                }
            }
        }
        let active_total = active.iter().filter(|&&a| a).count();
        if order.len() != active_total {
            let bad = (0..total)
                .find(|&i| active[i] && indeg[i] > 0)
                .expect("cycle implies leftover");
            let name = if bad < nc {
                format!("ctl:{}", design.ctl.net(CtlNetId(bad as u32)).name)
            } else {
                format!("dp:{}", design.dp.module(DpModId((bad - nc) as u32)).name)
            };
            return Err(SimError::CombinationalCycle { node: name });
        }
        Ok(Schedule { order, ctrl_of_dp })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hltg_netlist::ctl::CtlBuilder;
    use hltg_netlist::dp::DpBuilder;

    /// dp status -> ctl -> dp ctrl chains must be ordered correctly.
    #[test]
    fn cross_domain_ordering() {
        let mut dpb = DpBuilder::new("dp");
        let a = dpb.input("a", 8);
        let b2 = dpb.input("b", 8);
        let z = dpb.predicate("z", hltg_netlist::dp::DpOp::Eq, a, b2);
        let sel = dpb.ctrl("sel");
        let y = dpb.mux("y", &[sel], &[a, b2]);
        dpb.mark_output(y);
        dpb.mark_status(z);
        let dp = dpb.finish().unwrap();

        let mut cb = CtlBuilder::new("ctl");
        let zin = cb.sts("zin");
        let nsel = cb.not(zin);
        cb.rename(nsel, "nsel");
        cb.mark_ctrl_output(nsel);
        let ctl = cb.finish().unwrap();

        let mut d = hltg_netlist::Design::new("t", dp, ctl);
        d.bind_ctrl("nsel", "sel").unwrap();
        d.bind_sts("z.y", "zin").unwrap();
        d.validate().unwrap();

        let s = Schedule::build(&d).unwrap();
        // The Eq module must come before the sts input, which must come
        // before the inverter, which must come before the mux.
        let pos = |n: Node| s.order.iter().position(|&x| x == n).unwrap();
        let eq_mod = d.dp.net(d.dp.find_net("z.y").unwrap()).driver.unwrap();
        let mux_mod = d.dp.net(d.dp.find_net("y.y").unwrap()).driver.unwrap();
        let zin_net = d.ctl.find_net("zin").unwrap();
        let nsel_net = d.ctl.find_net("nsel").unwrap();
        assert!(pos(Node::Dp(eq_mod)) < pos(Node::Ctl(zin_net)));
        assert!(pos(Node::Ctl(zin_net)) < pos(Node::Ctl(nsel_net)));
        assert!(pos(Node::Ctl(nsel_net)) < pos(Node::Dp(mux_mod)));
    }

    /// A status->ctrl->status loop is combinational and must be rejected.
    #[test]
    fn rejects_cross_domain_cycle() {
        let mut dpb = DpBuilder::new("dp");
        let a = dpb.input("a", 8);
        let sel = dpb.ctrl("sel");
        let zero = dpb.constant("k0", 8, 0);
        let y = dpb.mux("y", &[sel], &[a, zero]);
        let z = dpb.predicate("z", hltg_netlist::dp::DpOp::Eq, y, a);
        dpb.mark_status(z);
        dpb.mark_output(y);
        let dp = dpb.finish().unwrap();

        let mut cb = CtlBuilder::new("ctl");
        let zin = cb.sts("zin");
        let out = cb.not(zin);
        cb.rename(out, "selsrc");
        cb.mark_ctrl_output(out);
        let ctl = cb.finish().unwrap();

        let mut d = hltg_netlist::Design::new("t", dp, ctl);
        d.bind_ctrl("selsrc", "sel").unwrap();
        d.bind_sts("z.y", "zin").unwrap();
        d.validate().unwrap(); // individually valid...
        let err = Schedule::build(&d).unwrap_err(); // ...but cyclic combined
        assert!(matches!(err, SimError::CombinationalCycle { .. }), "{err}");
    }
}
