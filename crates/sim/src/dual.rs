//! Dual (good / erroneous) simulation and discrepancy detection.
//!
//! Verification detects a design error when the implementation containing it
//! produces an output stream different from the error-free implementation.
//! [`DualSim`] runs both machines in lockstep on identical initial state and
//! inputs, and reports the first cycle at which a designated observable
//! output differs.

use crate::inject::Injection;
use crate::machine::{Machine, MachineSnapshot, ObservedOutputs};
use crate::schedule::{Schedule, SimError};
use hltg_netlist::dp::DpNetId;
use hltg_netlist::Design;

/// The first observable difference between the good and the bad machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Discrepancy {
    /// Cycle index (0-based) at which the difference appeared.
    pub cycle: u64,
    /// The observable output net that differs.
    pub net: DpNetId,
    /// Value in the error-free machine.
    pub good: u64,
    /// Value in the erroneous machine.
    pub bad: u64,
}

/// Lockstep simulation of an error-free and an erroneous machine.
///
/// # Examples
///
/// See the crate-level documentation of [`hltg_sim`](crate) and the
/// integration tests; `DualSim` is the detection oracle used by the
/// campaign runner.
#[derive(Debug)]
pub struct DualSim<'d> {
    good: Machine<'d>,
    bad: Machine<'d>,
}

impl<'d> DualSim<'d> {
    /// Builds the pair of machines; `injection` is installed in the bad one.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the design cannot be levelized.
    pub fn new(design: &'d Design, injection: Injection) -> Result<Self, SimError> {
        let schedule = Schedule::build(design)?;
        let good = Machine::with_schedule(design, schedule.clone());
        let mut bad = Machine::with_schedule(design, schedule);
        bad.set_injection(Some(injection));
        Ok(DualSim { good, bad })
    }

    /// The error-free machine.
    pub fn good(&self) -> &Machine<'d> {
        &self.good
    }

    /// The erroneous machine.
    pub fn bad(&self) -> &Machine<'d> {
        &self.bad
    }

    /// Applies `f` to both machines (to preload identical programs and
    /// register contents).
    pub fn with_both(&mut self, mut f: impl FnMut(&mut Machine<'d>)) {
        f(&mut self.good);
        f(&mut self.bad);
    }

    /// Steps both machines one cycle; returns the discrepancy if any
    /// observable output differs this cycle.
    pub fn step_compare(&mut self) -> Option<Discrepancy> {
        let cycle = self.good.cycle();
        let go = self.good.step();
        let bo = self.bad.step();
        let outs = &self.good.design().dp.outputs;
        for (i, (&g, &b)) in go.values.iter().zip(&bo.values).enumerate() {
            if g != b {
                return Some(Discrepancy {
                    cycle,
                    net: outs[i],
                    good: g,
                    bad: b,
                });
            }
        }
        None
    }

    /// Runs up to `max_cycles`, returning the first discrepancy found.
    pub fn run(&mut self, max_cycles: u64) -> Option<Discrepancy> {
        for _ in 0..max_cycles {
            if let Some(d) = self.step_compare() {
                return Some(d);
            }
        }
        None
    }
}

/// A shared-prefix simulation cache for screening many errors against one
/// recorded good-machine run.
///
/// Screening a candidate error against a known test sequence with
/// [`DualSim`] costs *two* full machine runs per error: the good machine
/// re-simulates the identical reset/program prefix and program every time.
/// `BatchScreen` records the good machine's observable-output stream once,
/// keeps the preloaded pre-run state as a [`MachineSnapshot`], and then
/// answers each [`detects`](BatchScreen::detects) query with a single
/// bad-machine run restored from that snapshot — same detection predicate
/// (first cycle at which any observable output differs), half the
/// simulation work, and no per-error machine construction.
#[derive(Debug)]
pub struct BatchScreen<'d> {
    bad: Machine<'d>,
    base: MachineSnapshot,
    good_outputs: Vec<ObservedOutputs>,
}

impl<'d> BatchScreen<'d> {
    /// Records the good run. `preload` is applied once to set up the shared
    /// state (program images, register contents); the good machine then runs
    /// `horizon` cycles from that state and its outputs are memoized.
    pub fn new(
        design: &'d Design,
        schedule: Schedule,
        mut preload: impl FnMut(&mut Machine<'d>),
        horizon: u64,
    ) -> Self {
        let mut good = Machine::with_schedule(design, schedule);
        preload(&mut good);
        let base = good.snapshot();
        let good_outputs = (0..horizon).map(|_| good.step()).collect();
        // The good machine has served its purpose; it becomes the reusable
        // bad machine (restored per query), saving a second construction.
        let mut bad = good;
        bad.restore(&base);
        BatchScreen {
            bad,
            base,
            good_outputs,
        }
    }

    /// Number of recorded cycles.
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.good_outputs.len()
    }

    /// Screens a batch of injections serially, returning a per-lane detect
    /// mask (bit `l` set iff `injections[l]` is detected).
    ///
    /// This is the serial reference for the packed fault-parallel screen
    /// ([`crate::PackedScreen::screen`]) and the fallback for lanes that
    /// cannot pack; the two produce bit-identical masks.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 injections are given (the mask is one word).
    pub fn detects_all(&mut self, injections: &[Injection]) -> u64 {
        assert!(injections.len() <= 64, "detect mask is one 64-bit word");
        let mut mask = 0u64;
        for (lane, &inj) in injections.iter().enumerate() {
            if self.detects(inj) {
                mask |= 1u64 << lane;
            }
        }
        mask
    }

    /// Whether `injection` diverges from the recorded good run within the
    /// horizon — exactly the [`DualSim`] detection predicate, at the cost
    /// of one bad-machine run.
    pub fn detects(&mut self, injection: Injection) -> bool {
        self.bad.restore(&self.base);
        self.bad.set_injection(Some(injection));
        for good in &self.good_outputs {
            if self.bad.step() != *good {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::Polarity;
    use hltg_netlist::ctl::CtlBuilder;
    use hltg_netlist::dp::DpBuilder;

    /// A 2-stage toy pipe: y = reg(a + b). Stuck line on the adder output is
    /// detected two cycles later at the output (one settle + one register).
    #[test]
    fn detects_stuck_adder_bit() {
        let mut dpb = DpBuilder::new("dp");
        let a = dpb.input("a", 8);
        let b2 = dpb.input("b", 8);
        let s = dpb.add("s", a, b2);
        let r = dpb.reg("r", s);
        dpb.mark_output(r);
        let dp = dpb.finish().unwrap();
        let ctl = CtlBuilder::new("ctl").finish().unwrap();
        let design = hltg_netlist::Design::new("t", dp, ctl);

        let inj = Injection {
            net: s,
            bit: 0,
            polarity: Polarity::StuckAt0,
        };
        let mut dual = DualSim::new(&design, inj).unwrap();
        dual.with_both(|m| {
            m.set_input(a, 1);
            m.set_input(b2, 0); // sum = 1: activates sa0 on bit 0
        });
        let d = dual.run(4).expect("discrepancy");
        assert_eq!(d.cycle, 1, "visible after the register latches");
        assert_eq!(d.good, 1);
        assert_eq!(d.bad, 0);
    }

    /// The batch screen agrees with per-error [`DualSim`] on every
    /// (bit, polarity) of the adder bus, from one recorded good run.
    #[test]
    fn batch_screen_matches_dual_sim() {
        let mut dpb = DpBuilder::new("dp");
        let a = dpb.input("a", 8);
        let b2 = dpb.input("b", 8);
        let s = dpb.add("s", a, b2);
        let r = dpb.reg("r", s);
        dpb.mark_output(r);
        let dp = dpb.finish().unwrap();
        let ctl = CtlBuilder::new("ctl").finish().unwrap();
        let design = hltg_netlist::Design::new("t", dp, ctl);

        let schedule = Schedule::build(&design).unwrap();
        let mut screen = BatchScreen::new(
            &design,
            schedule,
            |m| {
                m.set_input(a, 0x55);
                m.set_input(b2, 0);
            },
            6,
        );
        for bit in 0..8 {
            for polarity in [Polarity::StuckAt0, Polarity::StuckAt1] {
                let inj = Injection {
                    net: s,
                    bit,
                    polarity,
                };
                let mut dual = DualSim::new(&design, inj).unwrap();
                dual.with_both(|m| {
                    m.set_input(a, 0x55);
                    m.set_input(b2, 0);
                });
                assert_eq!(
                    screen.detects(inj),
                    dual.run(6).is_some(),
                    "screen disagrees with dual sim at bit {bit} {polarity:?}"
                );
            }
        }
    }

    /// A value that does not activate the error yields no discrepancy.
    #[test]
    fn silent_when_not_activated() {
        let mut dpb = DpBuilder::new("dp");
        let a = dpb.input("a", 8);
        let b2 = dpb.input("b", 8);
        let s = dpb.add("s", a, b2);
        dpb.mark_output(s);
        let dp = dpb.finish().unwrap();
        let ctl = CtlBuilder::new("ctl").finish().unwrap();
        let design = hltg_netlist::Design::new("t", dp, ctl);

        let inj = Injection {
            net: s,
            bit: 7,
            polarity: Polarity::StuckAt0,
        };
        let mut dual = DualSim::new(&design, inj).unwrap();
        dual.with_both(|m| {
            m.set_input(a, 1);
            m.set_input(b2, 2); // sum = 3: bit 7 already 0
        });
        assert!(dual.run(8).is_none());
    }
}
