//! Three-valued (0 / 1 / X) logic for structural implication.
//!
//! The controller-justification engine reasons about partially assigned
//! gate-level circuits; `X` represents an as-yet-undetermined value. The
//! algebra is the standard monotone extension of Boolean logic: a gate output
//! is known as soon as its inputs force it (e.g. any 0 input forces an AND
//! gate to 0).

use hltg_netlist::ctl::CtlOp;
use std::fmt;

/// A three-valued logic level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum V3 {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Unknown / unassigned.
    #[default]
    X,
}

impl V3 {
    /// Converts a concrete bool.
    pub fn from_bool(b: bool) -> Self {
        if b {
            V3::One
        } else {
            V3::Zero
        }
    }

    /// The concrete value, if known.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            V3::Zero => Some(false),
            V3::One => Some(true),
            V3::X => None,
        }
    }

    /// `true` if the value is known (0 or 1).
    pub fn is_known(self) -> bool {
        self != V3::X
    }

    /// Three-valued conjunction.
    pub fn and(self, rhs: V3) -> V3 {
        match (self, rhs) {
            (V3::Zero, _) | (_, V3::Zero) => V3::Zero,
            (V3::One, V3::One) => V3::One,
            _ => V3::X,
        }
    }

    /// Three-valued disjunction.
    pub fn or(self, rhs: V3) -> V3 {
        match (self, rhs) {
            (V3::One, _) | (_, V3::One) => V3::One,
            (V3::Zero, V3::Zero) => V3::Zero,
            _ => V3::X,
        }
    }

    /// Three-valued exclusive-or.
    pub fn xor(self, rhs: V3) -> V3 {
        match (self.to_bool(), rhs.to_bool()) {
            (Some(a), Some(b)) => V3::from_bool(a ^ b),
            _ => V3::X,
        }
    }

    /// Three-valued negation.
    #[allow(clippy::should_implement_trait)] // `v.not()` reads naturally in implication code
    pub fn not(self) -> V3 {
        match self {
            V3::Zero => V3::One,
            V3::One => V3::Zero,
            V3::X => V3::X,
        }
    }

    /// `true` if `self` is compatible with (refines to) `other`: X is
    /// compatible with anything; known values only with themselves.
    pub fn compatible(self, other: V3) -> bool {
        self == V3::X || other == V3::X || self == other
    }
}

impl fmt::Display for V3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            V3::Zero => '0',
            V3::One => '1',
            V3::X => 'x',
        };
        write!(f, "{c}")
    }
}

impl From<bool> for V3 {
    fn from(value: bool) -> Self {
        V3::from_bool(value)
    }
}

/// Evaluates a controller gate over three-valued inputs.
///
/// Inputs, constants and flip-flops are not evaluated here (they are sourced
/// externally or from state); calling this on them returns `X`.
pub fn eval_gate(op: CtlOp, inputs: &[V3]) -> V3 {
    match op {
        CtlOp::And => inputs.iter().copied().fold(V3::One, V3::and),
        CtlOp::Or => inputs.iter().copied().fold(V3::Zero, V3::or),
        CtlOp::Nand => inputs.iter().copied().fold(V3::One, V3::and).not(),
        CtlOp::Nor => inputs.iter().copied().fold(V3::Zero, V3::or).not(),
        CtlOp::Xor => inputs.iter().copied().fold(V3::Zero, V3::xor),
        CtlOp::Xnor => inputs.iter().copied().fold(V3::Zero, V3::xor).not(),
        CtlOp::Not => inputs[0].not(),
        CtlOp::Buf => inputs[0],
        CtlOp::Const(v) => V3::from_bool(v),
        CtlOp::Input(_) | CtlOp::Ff(_) => V3::X,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controlling_values_dominate_x() {
        assert_eq!(V3::Zero.and(V3::X), V3::Zero);
        assert_eq!(V3::X.and(V3::One), V3::X);
        assert_eq!(V3::One.or(V3::X), V3::One);
        assert_eq!(V3::X.or(V3::Zero), V3::X);
        assert_eq!(V3::X.xor(V3::One), V3::X);
        assert_eq!(V3::X.not(), V3::X);
    }

    #[test]
    fn boolean_restriction_matches_bool() {
        for a in [false, true] {
            for b in [false, true] {
                let (va, vb) = (V3::from_bool(a), V3::from_bool(b));
                assert_eq!(va.and(vb).to_bool(), Some(a && b));
                assert_eq!(va.or(vb).to_bool(), Some(a || b));
                assert_eq!(va.xor(vb).to_bool(), Some(a ^ b));
                assert_eq!(va.not().to_bool(), Some(!a));
            }
        }
    }

    #[test]
    fn gate_eval_nary() {
        use V3::{One, X, Zero};
        assert_eq!(eval_gate(CtlOp::And, &[One, One, Zero]), Zero);
        assert_eq!(eval_gate(CtlOp::And, &[One, X]), X);
        assert_eq!(eval_gate(CtlOp::Nor, &[Zero, Zero]), One);
        assert_eq!(eval_gate(CtlOp::Nor, &[Zero, X]), X);
        assert_eq!(eval_gate(CtlOp::Xor, &[One, One, One]), One);
        assert_eq!(eval_gate(CtlOp::Xnor, &[One, Zero]), Zero);
        assert_eq!(eval_gate(CtlOp::Const(true), &[]), One);
    }

    #[test]
    fn compatibility() {
        assert!(V3::X.compatible(V3::One));
        assert!(V3::One.compatible(V3::X));
        assert!(V3::One.compatible(V3::One));
        assert!(!V3::One.compatible(V3::Zero));
    }
}
