//! Design-error injection: the bus single-stuck-line model.

use hltg_netlist::dp::{DpModId, DpNetId, DpOp};
use std::fmt;

/// Stuck polarity of an injected line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// The line is stuck at logic 0.
    StuckAt0,
    /// The line is stuck at logic 1.
    StuckAt1,
}

impl fmt::Display for Polarity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Polarity::StuckAt0 => write!(f, "sa0"),
            Polarity::StuckAt1 => write!(f, "sa1"),
        }
    }
}

/// A bus single-stuck-line (bus SSL) design error: one line (`bit`) of one
/// datapath bus (`net`) permanently forced to a value.
///
/// This is the synthetic design-error model of Bhattacharya & Hayes used by
/// the paper's experiments (§VI): it defines an error population linear in
/// the size of the circuit.
///
/// # Examples
///
/// ```
/// use hltg_sim::{Injection, Polarity};
/// use hltg_netlist::dp::DpNetId;
/// let inj = Injection { net: DpNetId(3), bit: 7, polarity: Polarity::StuckAt1 };
/// assert_eq!(inj.apply(0x00), 0x80);
/// assert_eq!(inj.apply(0xff), 0xff);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Injection {
    /// The affected bus.
    pub net: DpNetId,
    /// The stuck line (bit index within the bus).
    pub bit: u32,
    /// Stuck polarity.
    pub polarity: Polarity,
}

impl Injection {
    /// Applies the stuck line to a bus value.
    #[inline]
    pub fn apply(&self, value: u64) -> u64 {
        match self.polarity {
            Polarity::StuckAt0 => value & !(1u64 << self.bit),
            Polarity::StuckAt1 => value | (1u64 << self.bit),
        }
    }

    /// `true` if applying the error to `value` actually changes it — i.e.
    /// the error is *activated* by this value.
    #[inline]
    pub fn activated_by(&self, value: u64) -> bool {
        self.apply(value) != value
    }
}

/// An [`Injection`] tagged with the fault lane it occupies in a packed
/// (fault-parallel) screening pass.
///
/// The packed screen of [`crate::PackedScreen`] carries up to 64 candidate
/// errors as independent lanes of one simulation; lane-tagged injections
/// tie each error to its bit position in the per-net divergence masks and
/// the final detect mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LaneInjection {
    /// Lane index (bit position in packed masks), `< 64`.
    pub lane: u32,
    /// The injected bus SSL error.
    pub injection: Injection,
}

impl LaneInjection {
    /// The single-bit mask selecting this lane in packed mask words.
    #[inline]
    #[must_use]
    pub fn mask_bit(&self) -> u64 {
        1u64 << self.lane
    }
}

/// A synthetic design error from the extended model family of Van
/// Campenhout et al.'s error-modeling work (the paper's reference \[28\]):
/// the bus SSL model used for Table 1, plus bus *order* errors (two lines
/// of a bus swapped, modelling miswired buses) and module substitution
/// errors (a module replaced by a similar one, modelling the wrong
/// operator being instantiated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorModel {
    /// One line stuck (the Table 1 model).
    BusSsl(Injection),
    /// Two lines of a bus swapped.
    BusOrder {
        /// The affected bus.
        net: DpNetId,
        /// Lower swapped line.
        low: u32,
        /// Higher swapped line.
        high: u32,
    },
    /// A module evaluated with a substituted (same-arity) operation.
    ModuleSubstitution {
        /// The affected module.
        module: DpModId,
        /// The wrong operation the erroneous design implements.
        with: DpOp,
    },
}

impl ErrorModel {
    /// Applies a value-level effect for net-affecting models; module
    /// substitutions return the value unchanged (they act at evaluation).
    #[inline]
    pub fn apply_net(&self, net: DpNetId, value: u64) -> u64 {
        match *self {
            ErrorModel::BusSsl(inj) if inj.net == net => inj.apply(value),
            ErrorModel::BusOrder { net: n, low, high } if n == net => {
                let a = (value >> low) & 1;
                let b = (value >> high) & 1;
                let mut v = value & !((1 << low) | (1 << high));
                v |= a << high;
                v |= b << low;
                v
            }
            _ => value,
        }
    }

    /// The substituted op for `module`, if this error affects it.
    #[inline]
    pub fn substitution(&self, module: DpModId) -> Option<DpOp> {
        match *self {
            ErrorModel::ModuleSubstitution { module: m, with } if m == module => Some(with),
            _ => None,
        }
    }
}

impl fmt::Display for ErrorModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ErrorModel::BusSsl(i) => write!(f, "ssl net{} [{}] {}", i.net.0, i.bit, i.polarity),
            ErrorModel::BusOrder { net, low, high } => {
                write!(f, "order net{} [{low}<->{high}]", net.0)
            }
            ErrorModel::ModuleSubstitution { module, with } => {
                write!(f, "msub mod{} -> {with:?}", module.0)
            }
        }
    }
}

impl From<Injection> for ErrorModel {
    fn from(value: Injection) -> Self {
        ErrorModel::BusSsl(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stuck_at_semantics() {
        let sa0 = Injection {
            net: DpNetId(0),
            bit: 3,
            polarity: Polarity::StuckAt0,
        };
        assert_eq!(sa0.apply(0b1111), 0b0111);
        assert!(sa0.activated_by(0b1000));
        assert!(!sa0.activated_by(0b0111));

        let sa1 = Injection {
            net: DpNetId(0),
            bit: 0,
            polarity: Polarity::StuckAt1,
        };
        assert_eq!(sa1.apply(0b0110), 0b0111);
        assert!(sa1.activated_by(0));
        assert!(!sa1.activated_by(1));
    }

    #[test]
    fn bus_order_swaps_lines() {
        let e = ErrorModel::BusOrder {
            net: DpNetId(2),
            low: 0,
            high: 3,
        };
        assert_eq!(e.apply_net(DpNetId(2), 0b0001), 0b1000);
        assert_eq!(e.apply_net(DpNetId(2), 0b1000), 0b0001);
        assert_eq!(e.apply_net(DpNetId(2), 0b1001), 0b1001, "equal lines are silent");
        assert_eq!(e.apply_net(DpNetId(9), 0b0001), 0b0001, "other nets untouched");
    }

    #[test]
    fn module_substitution_resolves() {
        let e = ErrorModel::ModuleSubstitution {
            module: DpModId(4),
            with: DpOp::Sub,
        };
        assert_eq!(e.substitution(DpModId(4)), Some(DpOp::Sub));
        assert_eq!(e.substitution(DpModId(5)), None);
        assert_eq!(e.apply_net(DpNetId(0), 7), 7);
    }
}
