//! Cycle-accurate machine simulation of a [`Design`].

use crate::inject::{ErrorModel, Injection};
use crate::schedule::{Node, Schedule, SimError};
use hltg_netlist::ctl::{CtlInputKind, CtlNetId, CtlOp};
use hltg_netlist::dp::{ArchId, ArchKind, DpModId, DpNetId, DpNetKind, DpOp};
use hltg_netlist::{word, Design};
use std::collections::HashMap;

/// State of one architectural object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchState {
    /// Register file contents.
    RegFile {
        /// Register values (index 0 may be hard-wired to zero on read).
        regs: Vec<u64>,
    },
    /// Sparse memory contents (absent words read as zero).
    Mem {
        /// Word-addressed contents.
        words: HashMap<u64, u64>,
    },
}

/// Complete sequential state of a machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineState {
    /// Controller flip-flop values, in flip-flop creation order.
    pub ctl_ffs: Vec<bool>,
    /// Datapath pipe-register values, in register creation order.
    pub dp_regs: Vec<u64>,
    /// Architectural state objects, indexed by [`ArchId`].
    pub archs: Vec<ArchState>,
}

/// Observable output values, in the order of
/// [`hltg_netlist::dp::DpNetlist::outputs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservedOutputs {
    /// One value per designated output net.
    pub values: Vec<u64>,
}

/// A saved point-in-time copy of a machine's sequential state.
///
/// Captured with [`Machine::snapshot`] and reinstated with
/// [`Machine::restore`], a snapshot lets one machine replay many runs from
/// a shared prefix (e.g. the post-reset, program-loaded state) without
/// rebuilding the machine or re-simulating the prefix. Snapshots carry no
/// combinational values — those are recomputed by the next
/// [`step`](Machine::step) — and neither the injection nor the externally
/// driven input values, so the same snapshot serves both good and
/// erroneous machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineSnapshot {
    state: MachineState,
    cycle: u64,
}

/// A simulated instance of a design: the *machine*.
///
/// The machine owns all sequential state. Each [`step`](Machine::step)
/// evaluates one clock cycle (combinational settle, then state commit).
/// An optional [`Injection`] turns this machine into the *erroneous*
/// implementation: one bus line is permanently stuck.
///
/// # Examples
///
/// ```
/// # use hltg_netlist::{Design};
/// # use hltg_netlist::dp::DpBuilder;
/// # use hltg_netlist::ctl::CtlBuilder;
/// use hltg_sim::Machine;
/// let mut dpb = DpBuilder::new("dp");
/// let a = dpb.input("a", 8);
/// let r = dpb.reg("r", a);
/// dpb.mark_output(r);
/// let dp = dpb.finish()?;
/// let ctl = CtlBuilder::new("ctl").finish()?;
/// let design = Design::new("t", dp, ctl);
/// let mut m = Machine::new(&design)?;
/// m.set_input(a, 42);
/// m.step();
/// m.step();
/// assert_eq!(m.dp_value(r), 42); // value appears after the register
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Machine<'d> {
    design: &'d Design,
    schedule: Schedule,
    ff_ids: Vec<CtlNetId>,
    ff_slot: HashMap<CtlNetId, usize>,
    reg_ids: Vec<DpModId>,
    reg_slot: HashMap<DpModId, usize>,
    sink_ids: Vec<DpModId>,
    sts_src: HashMap<CtlNetId, DpNetId>,
    cpi_src: HashMap<CtlNetId, (DpNetId, u32)>,
    state: MachineState,
    dp_vals: Vec<u64>,
    ctl_vals: Vec<bool>,
    ext_inputs: Vec<u64>,
    error: Option<ErrorModel>,
    cycle: u64,
}

impl<'d> Machine<'d> {
    /// Builds a machine for `design` in its reset state.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CombinationalCycle`] if the combined
    /// combinational graph of the design is cyclic.
    pub fn new(design: &'d Design) -> Result<Self, SimError> {
        let schedule = Schedule::build(design)?;
        Ok(Self::with_schedule(design, schedule))
    }

    /// Builds a machine reusing an existing [`Schedule`] (avoids
    /// re-levelizing when creating good/bad machine pairs).
    pub fn with_schedule(design: &'d Design, schedule: Schedule) -> Self {
        let mut ff_ids = Vec::new();
        let mut ff_slot = HashMap::new();
        for id in design.ctl.ff_nets() {
            ff_slot.insert(id, ff_ids.len());
            ff_ids.push(id);
        }
        let mut reg_ids = Vec::new();
        let mut reg_slot = HashMap::new();
        let mut sink_ids = Vec::new();
        for (id, m) in design.dp.iter_modules() {
            match m.op {
                DpOp::Reg(_) => {
                    reg_slot.insert(id, reg_ids.len());
                    reg_ids.push(id);
                }
                DpOp::RegFileWrite(_) | DpOp::MemWrite(_) => sink_ids.push(id),
                _ => {}
            }
        }
        let sts_src = design.sts_binds.iter().map(|b| (b.ctl, b.dp)).collect();
        let cpi_src = design
            .cpi_binds
            .iter()
            .map(|b| (b.ctl, (b.dp, b.bit)))
            .collect();
        let state = Self::reset_state(design, &ff_ids, &reg_ids);
        let dp_vals = vec![0; design.dp.net_count()];
        let ctl_vals = vec![false; design.ctl.net_count()];
        let ext_inputs = vec![0; design.dp.net_count()];
        Machine {
            design,
            schedule,
            ff_ids,
            ff_slot,
            reg_ids,
            reg_slot,
            sink_ids,
            sts_src,
            cpi_src,
            state,
            dp_vals,
            ctl_vals,
            ext_inputs,
            error: None,
            cycle: 0,
        }
    }

    fn reset_state(design: &Design, ff_ids: &[CtlNetId], reg_ids: &[DpModId]) -> MachineState {
        let ctl_ffs = ff_ids
            .iter()
            .map(|&id| match design.ctl.net(id).op {
                CtlOp::Ff(spec) => spec.init,
                _ => unreachable!("ff_ids holds flip-flops"),
            })
            .collect();
        let dp_regs = reg_ids
            .iter()
            .map(|&id| match design.dp.module(id).op {
                DpOp::Reg(spec) => spec.init,
                _ => unreachable!("reg_ids holds registers"),
            })
            .collect();
        let archs = design
            .dp
            .archs()
            .iter()
            .map(|a| match a.kind {
                ArchKind::RegFile { count, .. } => ArchState::RegFile {
                    regs: vec![0; count as usize],
                },
                ArchKind::Mem { .. } => ArchState::Mem {
                    words: HashMap::new(),
                },
            })
            .collect();
        MachineState {
            ctl_ffs,
            dp_regs,
            archs,
        }
    }

    /// Restores the reset state (registers/flip-flops to their init values,
    /// register files zeroed, memories emptied) and resets the cycle count.
    pub fn reset(&mut self) {
        self.state = Self::reset_state(self.design, &self.ff_ids, &self.reg_ids);
        self.cycle = 0;
    }

    /// Captures the complete sequential state and cycle count.
    #[must_use]
    pub fn snapshot(&self) -> MachineSnapshot {
        MachineSnapshot {
            state: self.state.clone(),
            cycle: self.cycle,
        }
    }

    /// Reinstates a previously captured [`snapshot`](Machine::snapshot).
    ///
    /// The installed injection (if any) is left untouched; only sequential
    /// state and the cycle count are rolled back, so a single erroneous
    /// machine can be re-screened from a shared prefix many times.
    pub fn restore(&mut self, snap: &MachineSnapshot) {
        self.state.clone_from(&snap.state);
        self.cycle = snap.cycle;
    }

    /// Installs (or removes) a stuck-line injection, making this the
    /// erroneous machine.
    pub fn set_injection(&mut self, injection: Option<Injection>) {
        self.error = injection.map(ErrorModel::BusSsl);
    }

    /// Installs (or removes) a design error from the extended model family
    /// (bus SSL, bus order, module substitution).
    pub fn set_error(&mut self, error: Option<ErrorModel>) {
        self.error = error;
    }

    /// The design this machine simulates.
    pub fn design(&self) -> &'d Design {
        self.design
    }

    /// The machine's evaluation schedule (shareable with a twin machine).
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Cycles executed since reset.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// State-vector slot of a pipe register module, if `module` is one
    /// (index into [`MachineState::dp_regs`]).
    pub fn reg_index(&self, module: DpModId) -> Option<usize> {
        self.reg_slot.get(&module).copied()
    }

    /// State-vector slot of a controller flip-flop, if `net` is one
    /// (index into [`MachineState::ctl_ffs`]).
    pub fn ff_index(&self, net: CtlNetId) -> Option<usize> {
        self.ff_slot.get(&net).copied()
    }

    /// Mutable access to the sequential state (for preloading programs and
    /// register contents).
    pub fn state_mut(&mut self) -> &mut MachineState {
        &mut self.state
    }

    /// Read-only access to the sequential state.
    pub fn state(&self) -> &MachineState {
        &self.state
    }

    /// Drives a primary data input for subsequent cycles.
    ///
    /// # Panics
    ///
    /// Panics if `net` is not a primary input.
    pub fn set_input(&mut self, net: DpNetId, value: u64) {
        assert_eq!(
            self.design.dp.net(net).kind,
            DpNetKind::Input,
            "set_input on non-input net"
        );
        self.ext_inputs[net.0 as usize] = word::truncate(value, self.design.dp.net(net).width);
    }

    /// Writes a word into an architectural memory (e.g. to load a program).
    pub fn preload_mem(&mut self, mem: ArchId, word_addr: u64, value: u64) {
        match &mut self.state.archs[mem.0 as usize] {
            ArchState::Mem { words } => {
                words.insert(word_addr, value);
            }
            ArchState::RegFile { .. } => panic!("preload_mem on a register file"),
        }
    }

    /// Reads a word from an architectural memory.
    pub fn read_mem(&self, mem: ArchId, word_addr: u64) -> u64 {
        match &self.state.archs[mem.0 as usize] {
            ArchState::Mem { words } => words.get(&word_addr).copied().unwrap_or(0),
            ArchState::RegFile { .. } => panic!("read_mem on a register file"),
        }
    }

    /// Writes a register of an architectural register file.
    pub fn set_reg(&mut self, rf: ArchId, index: u32, value: u64) {
        let width = self.design.dp.arch(rf).width();
        match &mut self.state.archs[rf.0 as usize] {
            ArchState::RegFile { regs } => regs[index as usize] = word::truncate(value, width),
            ArchState::Mem { .. } => panic!("set_reg on a memory"),
        }
    }

    /// Reads a register of an architectural register file (honours the
    /// hard-wired zero register).
    pub fn read_reg(&self, rf: ArchId, index: u32) -> u64 {
        let zero = matches!(
            self.design.dp.arch(rf).kind,
            ArchKind::RegFile { zero_reg: true, .. }
        ) && index == 0;
        match &self.state.archs[rf.0 as usize] {
            ArchState::RegFile { regs } => {
                if zero {
                    0
                } else {
                    regs[index as usize]
                }
            }
            ArchState::Mem { .. } => panic!("read_reg on a memory"),
        }
    }

    /// The externally driven input values, indexed by net id (crate-internal:
    /// the packed screen replicates a preloaded machine's environment).
    pub(crate) fn ext_inputs(&self) -> &[u64] {
        &self.ext_inputs
    }

    fn inject(&self, net: DpNetId, value: u64) -> u64 {
        match self.error {
            Some(e) => word::truncate(e.apply_net(net, value), self.design.dp.net(net).width),
            None => value,
        }
    }

    /// Value of a controller net after the combinational settle (flip-flops
    /// read their cycle-start state).
    pub fn ctl_value(&self, id: CtlNetId) -> bool {
        if let Some(&slot) = self.ff_slot.get(&id) {
            self.state.ctl_ffs[slot]
        } else {
            self.ctl_vals[id.0 as usize]
        }
    }

    /// Value of a datapath net after the combinational settle.
    pub fn dp_value(&self, net: DpNetId) -> u64 {
        match self.design.dp.net(net).kind {
            DpNetKind::Ctrl => {
                let src = self.schedule.ctrl_of_dp[&net];
                self.inject(net, self.ctl_value(src) as u64)
            }
            _ => self.dp_vals[net.0 as usize],
        }
    }

    fn arch_read(&self, op: &DpOp, addr: u64) -> u64 {
        match op {
            DpOp::RegFileRead(a) => {
                let ArchKind::RegFile {
                    count, zero_reg, ..
                } = self.design.dp.arch(*a).kind
                else {
                    unreachable!("validated")
                };
                let idx = (addr as u32) % count;
                if zero_reg && idx == 0 {
                    0
                } else {
                    match &self.state.archs[a.0 as usize] {
                        ArchState::RegFile { regs } => regs[idx as usize],
                        _ => unreachable!("validated"),
                    }
                }
            }
            DpOp::MemRead(a) => match &self.state.archs[a.0 as usize] {
                ArchState::Mem { words } => words.get(&addr).copied().unwrap_or(0),
                _ => unreachable!("validated"),
            },
            _ => unreachable!("arch_read on non-read op"),
        }
    }

    /// Executes one clock cycle: combinational settle, output sampling,
    /// sequential commit. Returns the observable outputs of the cycle.
    pub fn step(&mut self) -> ObservedOutputs {
        // Phase 1: source values — pipe-register outputs and primary inputs.
        for (slot, &mid) in self.reg_ids.iter().enumerate() {
            let out = self.design.dp.module(mid).output.expect("reg has output");
            self.dp_vals[out.0 as usize] = self.inject(out, self.state.dp_regs[slot]);
        }
        for (id, net) in self.design.dp.iter_nets() {
            if net.kind == DpNetKind::Input {
                self.dp_vals[id.0 as usize] = self.inject(id, self.ext_inputs[id.0 as usize]);
            }
        }

        // Phase 2: combinational settle in schedule order.
        for i in 0..self.schedule.order.len() {
            match self.schedule.order[i] {
                Node::Ctl(id) => {
                    let net = self.design.ctl.net(id);
                    let v = match net.op {
                        CtlOp::Input(CtlInputKind::Sts) => {
                            let src = self.sts_src[&id];
                            self.dp_value(src) & 1 == 1
                        }
                        CtlOp::Input(CtlInputKind::Cpi) => match self.cpi_src.get(&id) {
                            Some(&(src, bit)) => (self.dp_value(src) >> bit) & 1 == 1,
                            // Unbound CPIs are external; default to 0 unless
                            // driven through `ext_inputs` of a dp net.
                            None => false,
                        },
                        CtlOp::Const(v) => v,
                        _ => {
                            let vals: Vec<crate::tv::V3> = net
                                .inputs
                                .iter()
                                .map(|&i| crate::tv::V3::from_bool(self.ctl_value(i)))
                                .collect();
                            crate::tv::eval_gate(net.op, &vals)
                                .to_bool()
                                .expect("binary eval of known inputs")
                        }
                    };
                    self.ctl_vals[id.0 as usize] = v;
                }
                Node::Dp(mid) => {
                    let m = self.design.dp.module(mid);
                    let Some(out) = m.output else { continue };
                    let v = match &m.op {
                        DpOp::RegFileRead(_) | DpOp::MemRead(_) => {
                            let addr = self.dp_value(m.inputs[0]);
                            self.arch_read(&m.op, addr)
                        }
                        op => {
                            let inputs: Vec<u64> =
                                m.inputs.iter().map(|&n| self.dp_value(n)).collect();
                            let widths: Vec<u32> = m
                                .inputs
                                .iter()
                                .map(|&n| self.design.dp.net(n).width)
                                .collect();
                            let mut idx = 0usize;
                            for (k, &c) in m.ctrls.iter().enumerate() {
                                idx |= ((self.dp_value(c) & 1) as usize) << k;
                            }
                            // Module substitution errors evaluate the wrong
                            // operation in the erroneous machine.
                            let eff_op = self
                                .error
                                .and_then(|e| e.substitution(mid))
                                .unwrap_or(*op);
                            eff_op.eval_comb(&inputs, &widths, idx, self.design.dp.net(out).width)
                        }
                    };
                    self.dp_vals[out.0 as usize] =
                        self.inject(out, word::truncate(v, self.design.dp.net(out).width));
                }
            }
        }

        // Phase 3: sample observables.
        let outputs = ObservedOutputs {
            values: self
                .design
                .dp
                .outputs
                .iter()
                .map(|&o| self.dp_value(o))
                .collect(),
        };

        // Phase 4: sequential commit.
        let mut next_ffs = self.state.ctl_ffs.clone();
        for (slot, &id) in self.ff_ids.iter().enumerate() {
            let net = self.design.ctl.net(id);
            let CtlOp::Ff(spec) = net.op else {
                unreachable!("ff_ids holds flip-flops")
            };
            let d = self.ctl_value(net.inputs[0]);
            let mut port = 1;
            let en = if spec.has_enable {
                let e = self.ctl_value(net.inputs[port]);
                port += 1;
                e
            } else {
                true
            };
            let clr = spec.has_clear && self.ctl_value(net.inputs[port]);
            next_ffs[slot] = if clr {
                spec.clear_val
            } else if en {
                d
            } else {
                self.state.ctl_ffs[slot]
            };
        }
        let mut next_regs = self.state.dp_regs.clone();
        for (slot, &mid) in self.reg_ids.iter().enumerate() {
            let m = self.design.dp.module(mid);
            let DpOp::Reg(spec) = m.op else {
                unreachable!("reg_ids holds registers")
            };
            let d = self.dp_value(m.inputs[0]);
            let mut port = 0;
            let en = if spec.has_enable {
                let e = self.dp_value(m.ctrls[port]) & 1 == 1;
                port += 1;
                e
            } else {
                true
            };
            let clr = spec.has_clear && self.dp_value(m.ctrls[port]) & 1 == 1;
            next_regs[slot] = if clr {
                spec.clear_val
            } else if en {
                d
            } else {
                self.state.dp_regs[slot]
            };
        }
        // Architectural writes (applied in module order).
        for &mid in &self.sink_ids.clone() {
            let m = self.design.dp.module(mid);
            let we = self.dp_value(m.ctrls[0]) & 1 == 1;
            if !we {
                continue;
            }
            match m.op {
                DpOp::RegFileWrite(a) => {
                    let ArchKind::RegFile {
                        count,
                        zero_reg,
                        width,
                    } = self.design.dp.arch(a).kind
                    else {
                        unreachable!("validated")
                    };
                    let addr = (self.dp_value(m.inputs[0]) as u32) % count;
                    let data = word::truncate(self.dp_value(m.inputs[1]), width);
                    if !(zero_reg && addr == 0) {
                        match &mut self.state.archs[a.0 as usize] {
                            ArchState::RegFile { regs } => regs[addr as usize] = data,
                            _ => unreachable!("validated"),
                        }
                    }
                }
                DpOp::MemWrite(a) => {
                    let width = self.design.dp.arch(a).width();
                    let addr = self.dp_value(m.inputs[0]);
                    let data = self.dp_value(m.inputs[1]);
                    let bits = word::byte_mask_to_bits(self.dp_value(m.inputs[2]), width);
                    match &mut self.state.archs[a.0 as usize] {
                        ArchState::Mem { words } => {
                            let old = words.get(&addr).copied().unwrap_or(0);
                            words.insert(addr, (old & !bits) | (data & bits));
                        }
                        _ => unreachable!("validated"),
                    }
                }
                _ => unreachable!("sink_ids holds write ports"),
            }
        }
        self.state.ctl_ffs = next_ffs;
        self.state.dp_regs = next_regs;
        self.cycle += 1;
        outputs
    }
}
