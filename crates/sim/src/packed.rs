//! Fault-parallel (packed) screening: many injected errors per pass.
//!
//! Classic PPSFP (parallel-pattern single-fault propagation) packs fault
//! lanes into machine words. The paper's error model is word-level bus SSL,
//! so the packing here is *fault*-parallel rather than pattern-parallel: one
//! [`PackedScreen::screen`] pass carries up to [`MAX_LANES`] candidate
//! injections as independent lanes and steps the design once, producing a
//! per-lane detect mask against the good run computed in the same pass.
//!
//! # Representation
//!
//! The *base lane* is the error-free machine, evaluated exactly like
//! [`crate::Machine`]. Each fault lane is represented as a sparse
//! *divergence* from the base:
//!
//! - every datapath net carries its base value, a 64-bit *divergence mask*
//!   (bit `l` set iff lane `l` currently differs from the base), and lane
//!   values stored only for diverged lanes;
//! - every controller net is genuinely bit-sliced: one `u64` holds all 64
//!   lane values, so an entire gate evaluates in a single bitwise word op;
//! - architectural state (register files, memories) is shared with the base
//!   until a lane performs an *effectively different* write, at which point
//!   the lane forks a private copy (copy-on-divergent-write);
//! - a lane whose observable outputs diverge is *detected*: it is removed
//!   from the live set immediately, mirroring the serial screen's
//!   first-discrepancy early exit.
//!
//! Un-diverged lanes are carried for free: the per-cycle cost is one base
//! evaluation plus work proportional to the number of (net, lane) pairs
//! that actually differ.
//!
//! # Exactness
//!
//! Verdicts are bit-identical to [`crate::BatchScreen`] at any packing
//! width: diverged lanes are simulated with the exact per-lane semantics of
//! [`crate::Machine::step`], including the good/bad asymmetry that an
//! installed error truncates every net write in the bad machine. The
//! equivalence is asserted exhaustively in this module's tests and in the
//! campaign-level determinism suite.
//!
//! # Packing rules
//!
//! [`PackedScreen::can_pack`] rejects injections whose stuck line lies
//! outside the bus (`bit >= width` or `bit >= 64`): such a line aliases the
//! packed word store (the serial screen resolves it by truncation order, a
//! distinction the shared lane store cannot represent). Callers fall back
//! to the serial [`crate::BatchScreen`] for those lanes.

use crate::inject::{Injection, LaneInjection};
use crate::machine::{ArchState, Machine, MachineState};
use crate::schedule::{Node, Schedule};
use hltg_netlist::ctl::{CtlInputKind, CtlNetId, CtlOp};
use hltg_netlist::dp::{ArchKind, DpModId, DpNetId, DpOp};
use hltg_netlist::{word, Design};
use std::collections::HashMap;

/// Maximum number of fault lanes per packed pass (one per bit of the mask
/// word).
pub const MAX_LANES: usize = 64;

#[inline]
fn bcast(b: bool) -> u64 {
    if b {
        !0
    } else {
        0
    }
}

/// A fault-parallel screen: one recorded preload state, up to
/// [`MAX_LANES`] candidate errors per [`screen`](PackedScreen::screen)
/// pass.
#[derive(Debug)]
pub struct PackedScreen<'d> {
    design: &'d Design,
    // Static layout (mirrors `Machine`'s construction order).
    order: Vec<Node>,
    ff_ids: Vec<CtlNetId>,
    reg_ids: Vec<DpModId>,
    sink_ids: Vec<DpModId>,
    ff_slot_of_ctl: Vec<u32>,
    sts_src: Vec<u32>,
    cpi_src: Vec<(u32, u32)>,
    dp_of_ctl: Vec<Vec<DpNetId>>,
    net_width: Vec<u32>,
    mod_in_widths: Vec<Vec<u32>>,
    input_ids: Vec<DpNetId>,
    // Preloaded shared-prefix state (the packed analogue of
    // `BatchScreen`'s snapshot) and the externally driven inputs.
    base: MachineState,
    ext_inputs: Vec<u64>,
    horizon: u64,
    // Per-pass lane bookkeeping.
    live: u64,
    detected: u64,
    inj_on_net: HashMap<u32, Vec<LaneInjection>>,
    inj_mask_net: Vec<u64>,
    inj_touched: Vec<u32>,
    // Combinational values: datapath base/mask/lane-sparse, controller
    // bit-sliced.
    dp_base: Vec<u64>,
    dp_mask: Vec<u64>,
    dp_lane: Vec<u64>,
    ctl_base_v: Vec<bool>,
    ctl_word: Vec<u64>,
    // Sequential state.
    ffs_base: Vec<bool>,
    ffs_word: Vec<u64>,
    next_ffs_base: Vec<bool>,
    next_ffs_word: Vec<u64>,
    regs_base: Vec<u64>,
    regs_mask: Vec<u64>,
    regs_lane: Vec<u64>,
    archs_base: Vec<ArchState>,
    arch_forked: Vec<u64>,
    arch_lane: Vec<HashMap<u32, ArchState>>,
    scratch: Vec<u64>,
}

impl<'d> PackedScreen<'d> {
    /// Builds the packed screen. `preload` is applied once to a donor
    /// machine to set up the shared state (program images, register
    /// contents, driven inputs); every [`screen`](PackedScreen::screen)
    /// pass then restores that state and runs `horizon` cycles.
    pub fn new(
        design: &'d Design,
        schedule: Schedule,
        mut preload: impl FnMut(&mut Machine<'d>),
        horizon: u64,
    ) -> Self {
        let order = schedule.order.clone();
        let ctrl_of_dp = schedule.ctrl_of_dp.clone();
        let mut donor = Machine::with_schedule(design, schedule);
        preload(&mut donor);
        let base = donor.state().clone();
        let ext_inputs = donor.ext_inputs().to_vec();

        let ff_ids: Vec<CtlNetId> = design.ctl.ff_nets().collect();
        let mut reg_ids = Vec::new();
        let mut sink_ids = Vec::new();
        for (id, m) in design.dp.iter_modules() {
            match m.op {
                DpOp::Reg(_) => reg_ids.push(id),
                DpOp::RegFileWrite(_) | DpOp::MemWrite(_) => sink_ids.push(id),
                _ => {}
            }
        }
        let nc = design.ctl.net_count();
        let nn = design.dp.net_count();
        let mut ff_slot_of_ctl = vec![u32::MAX; nc];
        for (slot, &id) in ff_ids.iter().enumerate() {
            ff_slot_of_ctl[id.0 as usize] = slot as u32;
        }
        let mut sts_src = vec![u32::MAX; nc];
        for b in &design.sts_binds {
            sts_src[b.ctl.0 as usize] = b.dp.0;
        }
        let mut cpi_src = vec![(u32::MAX, 0u32); nc];
        for b in &design.cpi_binds {
            cpi_src[b.ctl.0 as usize] = (b.dp.0, b.bit);
        }
        let mut dp_of_ctl: Vec<Vec<DpNetId>> = vec![Vec::new(); nc];
        for (&dpn, &ctl) in &ctrl_of_dp {
            dp_of_ctl[ctl.0 as usize].push(dpn);
        }
        // Deterministic write-through order (HashMap iteration is not).
        for v in &mut dp_of_ctl {
            v.sort_unstable();
        }
        let net_width: Vec<u32> = design.dp.nets().iter().map(|n| n.width).collect();
        let mod_in_widths: Vec<Vec<u32>> = design
            .dp
            .modules()
            .iter()
            .map(|m| m.inputs.iter().map(|&n| net_width[n.0 as usize]).collect())
            .collect();
        let input_ids: Vec<DpNetId> = design.dp.input_nets().collect();

        let n_ffs = ff_ids.len();
        let n_regs = reg_ids.len();
        let n_archs = base.archs.len();
        PackedScreen {
            design,
            order,
            ff_ids,
            reg_ids,
            sink_ids,
            ff_slot_of_ctl,
            sts_src,
            cpi_src,
            dp_of_ctl,
            net_width,
            mod_in_widths,
            input_ids,
            base,
            ext_inputs,
            horizon,
            live: 0,
            detected: 0,
            inj_on_net: HashMap::new(),
            inj_mask_net: vec![0; nn],
            inj_touched: Vec::new(),
            dp_base: vec![0; nn],
            dp_mask: vec![0; nn],
            dp_lane: vec![0; nn * MAX_LANES],
            ctl_base_v: vec![false; nc],
            ctl_word: vec![0; nc],
            ffs_base: vec![false; n_ffs],
            ffs_word: vec![0; n_ffs],
            next_ffs_base: vec![false; n_ffs],
            next_ffs_word: vec![0; n_ffs],
            regs_base: vec![0; n_regs],
            regs_mask: vec![0; n_regs],
            regs_lane: vec![0; n_regs * MAX_LANES],
            archs_base: Vec::new(),
            arch_forked: vec![0; n_archs],
            arch_lane: (0..n_archs).map(|_| HashMap::new()).collect(),
            scratch: Vec::new(),
        }
    }

    /// Number of cycles each pass runs (same meaning as
    /// [`crate::BatchScreen::horizon`]).
    #[must_use]
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// `true` if `inj` can ride a packed lane: its stuck line must lie
    /// inside the bus (and inside the 64-bit lane store). Out-of-range
    /// lines alias the packed word representation; screen them serially.
    #[must_use]
    pub fn can_pack(&self, inj: Injection) -> bool {
        let n = inj.net.0 as usize;
        n < self.net_width.len() && inj.bit < 64 && inj.bit < self.net_width[n]
    }

    /// Screens up to [`MAX_LANES`] injections in one pass. Bit `l` of the
    /// returned mask is set iff lane `l`'s injection is detected — the
    /// exact [`crate::BatchScreen::detects`] verdict for each.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_LANES`] injections are given or if any
    /// fails [`can_pack`](PackedScreen::can_pack).
    pub fn screen(&mut self, injections: &[Injection]) -> u64 {
        assert!(
            injections.len() <= MAX_LANES,
            "{} injections exceed the packing width {MAX_LANES}",
            injections.len()
        );
        for &inj in injections {
            assert!(self.can_pack(inj), "unpackable injection {inj:?}");
        }
        // Install lane-tagged injections.
        for &n in &self.inj_touched {
            self.inj_mask_net[n as usize] = 0;
        }
        self.inj_touched.clear();
        self.inj_on_net.clear();
        for (lane, &injection) in injections.iter().enumerate() {
            let tagged = LaneInjection {
                lane: lane as u32,
                injection,
            };
            let n = injection.net.0;
            if self.inj_mask_net[n as usize] == 0 {
                self.inj_touched.push(n);
            }
            self.inj_mask_net[n as usize] |= tagged.mask_bit();
            self.inj_on_net.entry(n).or_default().push(tagged);
        }
        // Restore the shared-prefix state.
        self.live = if injections.len() == MAX_LANES {
            !0
        } else {
            (1u64 << injections.len()) - 1
        };
        self.detected = 0;
        self.ffs_base.copy_from_slice(&self.base.ctl_ffs);
        for slot in 0..self.ffs_base.len() {
            self.ffs_word[slot] = bcast(self.ffs_base[slot]);
        }
        self.regs_base.copy_from_slice(&self.base.dp_regs);
        self.regs_mask.fill(0);
        self.archs_base.clone_from(&self.base.archs);
        self.arch_forked.fill(0);
        for m in &mut self.arch_lane {
            m.clear();
        }
        self.dp_mask.fill(0);

        for _ in 0..self.horizon {
            self.step_packed();
            if self.live == 0 {
                break;
            }
        }
        self.detected
    }

    // ---- value access helpers -------------------------------------------

    #[inline]
    fn read_dp_lane(&self, net: DpNetId, lane: u32) -> u64 {
        let n = net.0 as usize;
        if (self.dp_mask[n] >> lane) & 1 == 1 {
            self.dp_lane[n * MAX_LANES + lane as usize]
        } else {
            self.dp_base[n]
        }
    }

    #[inline]
    fn ctl_get(&self, id: CtlNetId) -> (bool, u64) {
        let slot = self.ff_slot_of_ctl[id.0 as usize];
        if slot != u32::MAX {
            (
                self.ffs_base[slot as usize],
                self.ffs_word[slot as usize],
            )
        } else {
            (self.ctl_base_v[id.0 as usize], self.ctl_word[id.0 as usize])
        }
    }

    /// Lanes that must be evaluated individually for `net`: the diverged
    /// lanes plus any lane injecting this net, restricted to live lanes.
    #[inline]
    fn lanes_of(&self, net: DpNetId, diverged: u64) -> u64 {
        (diverged | self.inj_mask_net[net.0 as usize]) & self.live
    }

    /// Commits one net: base value as the good machine stores it, lane
    /// values with the bad-machine semantics (injection applied, then the
    /// unconditional truncation `Machine::inject` performs whenever an
    /// error is installed). The divergence mask is rebuilt from scratch,
    /// so reconverged lanes drop out.
    fn set_net(&mut self, net: DpNetId, base_raw: u64, lanes: &[(u32, u64)]) {
        let n = net.0 as usize;
        let w = self.net_width[n];
        self.dp_base[n] = base_raw;
        let mut mask = 0u64;
        for &(lane, raw) in lanes {
            let mut v = raw;
            if (self.inj_mask_net[n] >> lane) & 1 == 1 {
                if let Some(list) = self.inj_on_net.get(&(n as u32)) {
                    for t in list {
                        if t.lane == lane {
                            v = t.injection.apply(v);
                        }
                    }
                }
            }
            let v = word::truncate(v, w);
            if v != base_raw {
                mask |= 1u64 << lane;
                self.dp_lane[n * MAX_LANES + lane as usize] = v;
            }
        }
        self.dp_mask[n] = mask;
    }

    fn arch_read(&self, op: &DpOp, arch_of_lane: Option<u32>, addr: u64) -> u64 {
        match op {
            DpOp::RegFileRead(a) => {
                let ArchKind::RegFile {
                    count, zero_reg, ..
                } = self.design.dp.arch(*a).kind
                else {
                    unreachable!("validated")
                };
                let idx = (addr as u32) % count;
                if zero_reg && idx == 0 {
                    return 0;
                }
                let st = match arch_of_lane {
                    Some(lane) => &self.arch_lane[a.0 as usize][&lane],
                    None => &self.archs_base[a.0 as usize],
                };
                match st {
                    ArchState::RegFile { regs } => regs[idx as usize],
                    ArchState::Mem { .. } => unreachable!("validated"),
                }
            }
            DpOp::MemRead(a) => {
                let st = match arch_of_lane {
                    Some(lane) => &self.arch_lane[a.0 as usize][&lane],
                    None => &self.archs_base[a.0 as usize],
                };
                match st {
                    ArchState::Mem { words } => words.get(&addr).copied().unwrap_or(0),
                    ArchState::RegFile { .. } => unreachable!("validated"),
                }
            }
            _ => unreachable!("arch_read on non-read op"),
        }
    }

    // ---- one packed cycle ------------------------------------------------

    fn step_packed(&mut self) {
        let design = self.design;
        let mut buf = [(0u32, 0u64); MAX_LANES];

        // Phase 1: sources — pipe-register outputs, primary inputs, and
        // write-through of flip-flop-bound ctrl nets (the lazy
        // `Machine::dp_value` reads, materialized up front).
        for slot in 0..self.reg_ids.len() {
            let mid = self.reg_ids[slot];
            let out = design.dp.module(mid).output.expect("reg has output");
            let base = self.regs_base[slot];
            let diverged = self.regs_mask[slot] & self.live;
            let mut len = 0;
            let mut rem = self.lanes_of(out, diverged);
            while rem != 0 {
                let lane = rem.trailing_zeros();
                rem &= rem - 1;
                let raw = if (diverged >> lane) & 1 == 1 {
                    self.regs_lane[slot * MAX_LANES + lane as usize]
                } else {
                    base
                };
                buf[len] = (lane, raw);
                len += 1;
            }
            self.set_net(out, base, &buf[..len]);
        }
        for k in 0..self.input_ids.len() {
            let id = self.input_ids[k];
            let base = self.ext_inputs[id.0 as usize];
            let mut len = 0;
            let mut rem = self.lanes_of(id, 0);
            while rem != 0 {
                let lane = rem.trailing_zeros();
                rem &= rem - 1;
                buf[len] = (lane, base);
                len += 1;
            }
            self.set_net(id, base, &buf[..len]);
        }
        for slot in 0..self.ff_ids.len() {
            let cid = self.ff_ids[slot].0 as usize;
            if self.dp_of_ctl[cid].is_empty() {
                continue;
            }
            let b = self.ffs_base[slot];
            let w = self.ffs_word[slot];
            for k in 0..self.dp_of_ctl[cid].len() {
                let dpn = self.dp_of_ctl[cid][k];
                self.write_through(dpn, b, w, &mut buf);
            }
        }

        // Phase 2: combinational settle in schedule order.
        for oi in 0..self.order.len() {
            match self.order[oi] {
                Node::Ctl(id) => self.eval_ctl(id, &mut buf),
                Node::Dp(mid) => self.eval_dp(mid, &mut buf),
            }
        }

        // Phase 3: sample observables; newly diverged lanes are detected
        // and frozen (the packed analogue of the serial early exit).
        let mut newly = 0u64;
        for &o in &design.dp.outputs {
            newly |= self.dp_mask[o.0 as usize];
        }
        newly &= self.live;
        if newly != 0 {
            self.detected |= newly;
            self.live &= !newly;
            for a in 0..self.arch_lane.len() {
                self.arch_forked[a] &= self.live;
                let mut rem = newly;
                while rem != 0 {
                    let lane = rem.trailing_zeros();
                    rem &= rem - 1;
                    self.arch_lane[a].remove(&lane);
                }
            }
            if self.live == 0 {
                return;
            }
        }

        // Phase 4: sequential commit.
        self.commit_ffs();
        self.commit_regs();
        self.commit_arch_writes();
        std::mem::swap(&mut self.ffs_base, &mut self.next_ffs_base);
        std::mem::swap(&mut self.ffs_word, &mut self.next_ffs_word);
    }

    /// Write-through of a controller-bound datapath net from a controller
    /// (base, word) pair.
    fn write_through(&mut self, dpn: DpNetId, b: bool, w: u64, buf: &mut [(u32, u64); MAX_LANES]) {
        let diverged = (w ^ bcast(b)) & self.live;
        let mut len = 0;
        let mut rem = self.lanes_of(dpn, diverged);
        while rem != 0 {
            let lane = rem.trailing_zeros();
            rem &= rem - 1;
            buf[len] = (lane, (w >> lane) & 1);
            len += 1;
        }
        self.set_net(dpn, b as u64, &buf[..len]);
    }

    fn eval_ctl(&mut self, id: CtlNetId, buf: &mut [(u32, u64); MAX_LANES]) {
        let design = self.design;
        let net = design.ctl.net(id);
        let cid = id.0 as usize;
        let (b, w) = match net.op {
            CtlOp::Input(CtlInputKind::Sts) => {
                let s = self.sts_src[cid] as usize;
                self.sliced_dp_bit(s, 0)
            }
            CtlOp::Input(CtlInputKind::Cpi) => {
                let (src, bit) = self.cpi_src[cid];
                if src == u32::MAX {
                    // Unbound CPIs are external; default to 0.
                    (false, 0)
                } else {
                    self.sliced_dp_bit(src as usize, bit)
                }
            }
            CtlOp::Const(v) => (v, bcast(v)),
            CtlOp::Not => {
                let (ib, iw) = self.ctl_get(net.inputs[0]);
                (!ib, !iw)
            }
            CtlOp::Buf => self.ctl_get(net.inputs[0]),
            CtlOp::And | CtlOp::Nand => {
                let (mut ab, mut aw) = (true, !0u64);
                for &i in &net.inputs {
                    let (ib, iw) = self.ctl_get(i);
                    ab &= ib;
                    aw &= iw;
                }
                if matches!(net.op, CtlOp::Nand) {
                    (!ab, !aw)
                } else {
                    (ab, aw)
                }
            }
            CtlOp::Or | CtlOp::Nor => {
                let (mut ab, mut aw) = (false, 0u64);
                for &i in &net.inputs {
                    let (ib, iw) = self.ctl_get(i);
                    ab |= ib;
                    aw |= iw;
                }
                if matches!(net.op, CtlOp::Nor) {
                    (!ab, !aw)
                } else {
                    (ab, aw)
                }
            }
            CtlOp::Xor | CtlOp::Xnor => {
                let (mut ab, mut aw) = (false, 0u64);
                for &i in &net.inputs {
                    let (ib, iw) = self.ctl_get(i);
                    ab ^= ib;
                    aw ^= iw;
                }
                if matches!(net.op, CtlOp::Xnor) {
                    (!ab, !aw)
                } else {
                    (ab, aw)
                }
            }
            CtlOp::Ff(_) => unreachable!("flip-flops are not scheduled"),
        };
        self.ctl_base_v[cid] = b;
        self.ctl_word[cid] = w;
        for k in 0..self.dp_of_ctl[cid].len() {
            let dpn = self.dp_of_ctl[cid][k];
            self.write_through(dpn, b, w, buf);
        }
    }

    /// Bit `bit` of datapath net `n`, as a controller (base, word) pair.
    fn sliced_dp_bit(&self, n: usize, bit: u32) -> (bool, u64) {
        let b = (self.dp_base[n] >> bit) & 1 == 1;
        let mut w = bcast(b);
        let mut rem = self.dp_mask[n] & self.live;
        while rem != 0 {
            let lane = rem.trailing_zeros();
            rem &= rem - 1;
            let lb = (self.dp_lane[n * MAX_LANES + lane as usize] >> bit) & 1;
            w = (w & !(1u64 << lane)) | (lb << lane);
        }
        (b, w)
    }

    fn eval_dp(&mut self, mid: DpModId, buf: &mut [(u32, u64); MAX_LANES]) {
        let design = self.design;
        let m = design.dp.module(mid);
        let Some(out) = m.output else {
            return; // write sinks commit in phase 4
        };
        let out_w = self.net_width[out.0 as usize];
        match &m.op {
            DpOp::RegFileRead(a) | DpOp::MemRead(a) => {
                let addr_net = m.inputs[0];
                let base_addr = self.dp_base[addr_net.0 as usize];
                let base_v = word::truncate(self.arch_read(&m.op, None, base_addr), out_w);
                let diverged = (self.dp_mask[addr_net.0 as usize]
                    | self.arch_forked[a.0 as usize])
                    & self.live;
                let mut len = 0;
                let mut rem = self.lanes_of(out, diverged);
                while rem != 0 {
                    let lane = rem.trailing_zeros();
                    rem &= rem - 1;
                    let raw = if (diverged >> lane) & 1 == 1 {
                        let addr = self.read_dp_lane(addr_net, lane);
                        let forked = (self.arch_forked[a.0 as usize] >> lane) & 1 == 1;
                        let v = self.arch_read(&m.op, forked.then_some(lane), addr);
                        word::truncate(v, out_w)
                    } else {
                        base_v
                    };
                    buf[len] = (lane, raw);
                    len += 1;
                }
                self.set_net(out, base_v, &buf[..len]);
            }
            op => {
                let mut vals = std::mem::take(&mut self.scratch);
                // Base evaluation (the good machine's value).
                vals.clear();
                vals.extend(m.inputs.iter().map(|&n| self.dp_base[n.0 as usize]));
                let mut idx = 0usize;
                for (k, &c) in m.ctrls.iter().enumerate() {
                    idx |= ((self.dp_base[c.0 as usize] & 1) as usize) << k;
                }
                let widths = &self.mod_in_widths[mid.0 as usize];
                let base_v = word::truncate(op.eval_comb(&vals, widths, idx, out_w), out_w);
                // Divergence is the union of input and control divergence.
                let mut diverged = 0u64;
                for &n in m.inputs.iter().chain(m.ctrls.iter()) {
                    diverged |= self.dp_mask[n.0 as usize];
                }
                diverged &= self.live;
                let mut len = 0;
                let mut rem = self.lanes_of(out, diverged);
                while rem != 0 {
                    let lane = rem.trailing_zeros();
                    rem &= rem - 1;
                    let raw = if (diverged >> lane) & 1 == 1 {
                        vals.clear();
                        vals.extend(m.inputs.iter().map(|&n| self.read_dp_lane(n, lane)));
                        let mut idx = 0usize;
                        for (k, &c) in m.ctrls.iter().enumerate() {
                            idx |= ((self.read_dp_lane(c, lane) & 1) as usize) << k;
                        }
                        word::truncate(op.eval_comb(&vals, widths, idx, out_w), out_w)
                    } else {
                        base_v
                    };
                    buf[len] = (lane, raw);
                    len += 1;
                }
                self.scratch = vals;
                self.set_net(out, base_v, &buf[..len]);
            }
        }
    }

    /// Next-state for all controller flip-flops, fully word-parallel.
    fn commit_ffs(&mut self) {
        let design = self.design;
        for slot in 0..self.ff_ids.len() {
            let id = self.ff_ids[slot];
            let net = design.ctl.net(id);
            let CtlOp::Ff(spec) = net.op else {
                unreachable!("ff_ids holds flip-flops")
            };
            let (d_b, d_w) = self.ctl_get(net.inputs[0]);
            let mut port = 1;
            let (en_b, en_w) = if spec.has_enable {
                let x = self.ctl_get(net.inputs[port]);
                port += 1;
                x
            } else {
                (true, !0u64)
            };
            let (clr_b, clr_w) = if spec.has_clear {
                self.ctl_get(net.inputs[port])
            } else {
                (false, 0u64)
            };
            let cur_b = self.ffs_base[slot];
            let cur_w = self.ffs_word[slot];
            self.next_ffs_base[slot] = if clr_b {
                spec.clear_val
            } else if en_b {
                d_b
            } else {
                cur_b
            };
            self.next_ffs_word[slot] =
                (clr_w & bcast(spec.clear_val)) | (!clr_w & ((en_w & d_w) | (!en_w & cur_w)));
        }
    }

    fn commit_regs(&mut self) {
        let design = self.design;
        for slot in 0..self.reg_ids.len() {
            let mid = self.reg_ids[slot];
            let m = design.dp.module(mid);
            let DpOp::Reg(spec) = m.op else {
                unreachable!("reg_ids holds registers")
            };
            let d_net = m.inputs[0];
            let mut port = 0;
            let en_net = spec.has_enable.then(|| {
                let n = m.ctrls[port];
                port += 1;
                n
            });
            let clr_net = spec.has_clear.then(|| m.ctrls[port]);
            let d_b = self.dp_base[d_net.0 as usize];
            let en_b = en_net.is_none_or(|n| self.dp_base[n.0 as usize] & 1 == 1);
            let clr_b = clr_net.is_some_and(|n| self.dp_base[n.0 as usize] & 1 == 1);
            let cur_b = self.regs_base[slot];
            // `Machine` commits `clear_val` untruncated; mirror that.
            let next_b = if clr_b {
                spec.clear_val
            } else if en_b {
                d_b
            } else {
                cur_b
            };
            let mut diverged = self.dp_mask[d_net.0 as usize] | (self.regs_mask[slot]);
            if let Some(n) = en_net {
                diverged |= self.dp_mask[n.0 as usize];
            }
            if let Some(n) = clr_net {
                diverged |= self.dp_mask[n.0 as usize];
            }
            diverged &= self.live;
            let cur_mask = self.regs_mask[slot];
            let mut nm = 0u64;
            let mut rem = diverged;
            while rem != 0 {
                let lane = rem.trailing_zeros();
                rem &= rem - 1;
                let d_l = self.read_dp_lane(d_net, lane);
                let en_l = en_net.is_none_or(|n| self.read_dp_lane(n, lane) & 1 == 1);
                let clr_l = clr_net.is_some_and(|n| self.read_dp_lane(n, lane) & 1 == 1);
                let cur_l = if (cur_mask >> lane) & 1 == 1 {
                    self.regs_lane[slot * MAX_LANES + lane as usize]
                } else {
                    cur_b
                };
                let next_l = if clr_l {
                    spec.clear_val
                } else if en_l {
                    d_l
                } else {
                    cur_l
                };
                if next_l != next_b {
                    self.regs_lane[slot * MAX_LANES + lane as usize] = next_l;
                    nm |= 1u64 << lane;
                }
            }
            self.regs_base[slot] = next_b;
            self.regs_mask[slot] = nm;
        }
    }

    /// Architectural writes with copy-on-divergent-write forking: a lane
    /// whose effective write differs from the base's clones the base state
    /// (as of just before the base's write this sink) and applies its own
    /// write to the private copy.
    fn commit_arch_writes(&mut self) {
        let design = self.design;
        for si in 0..self.sink_ids.len() {
            let mid = self.sink_ids[si];
            let m = design.dp.module(mid);
            let we_net = m.ctrls[0];
            match m.op {
                DpOp::RegFileWrite(a) => {
                    let ArchKind::RegFile {
                        count,
                        zero_reg,
                        width,
                    } = design.dp.arch(a).kind
                    else {
                        unreachable!("validated")
                    };
                    let ai = a.0 as usize;
                    let eff = |we: u64, addr: u64, data: u64| -> Option<(u32, u64)> {
                        if we & 1 != 1 {
                            return None;
                        }
                        let addr = (addr as u32) % count;
                        if zero_reg && addr == 0 {
                            return None;
                        }
                        Some((addr, word::truncate(data, width)))
                    };
                    let base_eff = eff(
                        self.dp_base[we_net.0 as usize],
                        self.dp_base[m.inputs[0].0 as usize],
                        self.dp_base[m.inputs[1].0 as usize],
                    );
                    let relevant = (self.dp_mask[we_net.0 as usize]
                        | self.dp_mask[m.inputs[0].0 as usize]
                        | self.dp_mask[m.inputs[1].0 as usize]
                        | self.arch_forked[ai])
                        & self.live;
                    let mut rem = relevant;
                    while rem != 0 {
                        let lane = rem.trailing_zeros();
                        rem &= rem - 1;
                        let lane_eff = eff(
                            self.read_dp_lane(we_net, lane),
                            self.read_dp_lane(m.inputs[0], lane),
                            self.read_dp_lane(m.inputs[1], lane),
                        );
                        if (self.arch_forked[ai] >> lane) & 1 != 1 {
                            if lane_eff == base_eff {
                                continue;
                            }
                            self.arch_lane[ai].insert(lane, self.archs_base[ai].clone());
                            self.arch_forked[ai] |= 1u64 << lane;
                        }
                        if let Some((addr, data)) = lane_eff {
                            if let Some(ArchState::RegFile { regs }) =
                                self.arch_lane[ai].get_mut(&lane)
                            {
                                regs[addr as usize] = data;
                            }
                        }
                    }
                    if let Some((addr, data)) = base_eff {
                        if let ArchState::RegFile { regs } = &mut self.archs_base[ai] {
                            regs[addr as usize] = data;
                        }
                    }
                }
                DpOp::MemWrite(a) => {
                    let width = design.dp.arch(a).width();
                    let ai = a.0 as usize;
                    let eff = |we: u64, addr: u64, data: u64, mask: u64| -> Option<(u64, u64, u64)> {
                        (we & 1 == 1)
                            .then(|| (addr, data, word::byte_mask_to_bits(mask, width)))
                    };
                    let base_eff = eff(
                        self.dp_base[we_net.0 as usize],
                        self.dp_base[m.inputs[0].0 as usize],
                        self.dp_base[m.inputs[1].0 as usize],
                        self.dp_base[m.inputs[2].0 as usize],
                    );
                    let relevant = (self.dp_mask[we_net.0 as usize]
                        | self.dp_mask[m.inputs[0].0 as usize]
                        | self.dp_mask[m.inputs[1].0 as usize]
                        | self.dp_mask[m.inputs[2].0 as usize]
                        | self.arch_forked[ai])
                        & self.live;
                    let mem_write = |st: &mut ArchState, addr: u64, data: u64, bits: u64| {
                        if let ArchState::Mem { words } = st {
                            let old = words.get(&addr).copied().unwrap_or(0);
                            words.insert(addr, (old & !bits) | (data & bits));
                        }
                    };
                    let mut rem = relevant;
                    while rem != 0 {
                        let lane = rem.trailing_zeros();
                        rem &= rem - 1;
                        let lane_eff = eff(
                            self.read_dp_lane(we_net, lane),
                            self.read_dp_lane(m.inputs[0], lane),
                            self.read_dp_lane(m.inputs[1], lane),
                            self.read_dp_lane(m.inputs[2], lane),
                        );
                        if (self.arch_forked[ai] >> lane) & 1 != 1 {
                            if lane_eff == base_eff {
                                continue;
                            }
                            self.arch_lane[ai].insert(lane, self.archs_base[ai].clone());
                            self.arch_forked[ai] |= 1u64 << lane;
                        }
                        if let Some((addr, data, bits)) = lane_eff {
                            if let Some(st) = self.arch_lane[ai].get_mut(&lane) {
                                mem_write(st, addr, data, bits);
                            }
                        }
                    }
                    if let Some((addr, data, bits)) = base_eff {
                        mem_write(&mut self.archs_base[ai], addr, data, bits);
                    }
                }
                _ => unreachable!("sink_ids holds write ports"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dual::BatchScreen;
    use crate::inject::Polarity;
    use hltg_netlist::ctl::CtlBuilder;
    use hltg_netlist::dp::{DpBuilder, RegSpec};

    /// The simple 2-stage pipe of the `BatchScreen` tests: packed verdicts
    /// over the full (bit, polarity) error set of the adder bus must equal
    /// the serial screen's, from one pass.
    #[test]
    fn packed_matches_batch_on_adder_pipe() {
        let mut dpb = DpBuilder::new("dp");
        let a = dpb.input("a", 8);
        let b2 = dpb.input("b", 8);
        let s = dpb.add("s", a, b2);
        let r = dpb.reg("r", s);
        dpb.mark_output(r);
        let dp = dpb.finish().unwrap();
        let ctl = CtlBuilder::new("ctl").finish().unwrap();
        let design = hltg_netlist::Design::new("t", dp, ctl);

        let preload = |m: &mut Machine<'_>| {
            m.set_input(a, 0x55);
            m.set_input(b2, 0);
        };
        let schedule = Schedule::build(&design).unwrap();
        let mut batch = BatchScreen::new(&design, schedule.clone(), preload, 6);
        let mut packed = PackedScreen::new(&design, schedule, preload, 6);

        let mut injs = Vec::new();
        for bit in 0..8 {
            for polarity in [Polarity::StuckAt0, Polarity::StuckAt1] {
                injs.push(Injection {
                    net: s,
                    bit,
                    polarity,
                });
            }
        }
        assert_eq!(packed.screen(&injs), batch.detects_all(&injs));
    }

    /// A pipeline with cross-domain control (status -> gate -> flip-flop ->
    /// control), an enable register, a register file and a memory: packed
    /// verdicts for *every* (net, bit, polarity) error — including ctrl and
    /// input nets — must equal the serial screen's, across repeated passes
    /// of the same `PackedScreen`.
    #[test]
    fn packed_matches_batch_exhaustively_on_ctl_arch_pipe() {
        let mut dpb = DpBuilder::new("dp");
        let a = dpb.input("a", 8);
        let b2 = dpb.input("b", 8);
        let sum = dpb.add("sum", a, b2);
        let eqp = dpb.predicate("eqp", DpOp::Eq, sum, b2);
        dpb.mark_status(eqp);
        let sel = dpb.ctrl("sel");
        let we = dpb.ctrl("we");
        let enr = dpb.ctrl("enr");
        let y = dpb.mux("y", &[sel], &[sum, b2]);
        let r = dpb.reg_spec(
            "r",
            y,
            RegSpec {
                init: 0,
                has_enable: true,
                has_clear: false,
                clear_val: 0,
            },
            Some(enr),
            None,
        );
        let rf = dpb.arch_regfile("rf", 8, 8, true);
        dpb.rf_write("wrf", rf, a, r, we);
        let rd = dpb.rf_read("rrf", rf, b2);
        let mem = dpb.arch_mem("m", 8);
        let kmask = dpb.constant("kmask", 1, 1);
        dpb.mem_write("wm", mem, b2, rd, kmask, we);
        let mr = dpb.mem_read("rm", mem, a);
        dpb.mark_output(r);
        dpb.mark_output(rd);
        dpb.mark_output(mr);
        let dp = dpb.finish().unwrap();

        let mut cb = CtlBuilder::new("ctl");
        let zin = cb.sts("zin");
        let f1 = cb.ff("f1", zin, false);
        let nsel = cb.not(zin);
        cb.rename(nsel, "nsel");
        cb.mark_ctrl_output(nsel);
        cb.mark_ctrl_output(f1);
        let ens = cb.xor(&[zin, f1]);
        cb.rename(ens, "ens");
        cb.mark_ctrl_output(ens);
        let ctl = cb.finish().unwrap();

        let mut design = hltg_netlist::Design::new("t", dp, ctl);
        design.bind_ctrl("nsel", "sel").unwrap();
        design.bind_ctrl("f1", "we").unwrap();
        design.bind_ctrl("ens", "enr").unwrap();
        design.bind_sts("eqp.y", "zin").unwrap();
        design.validate().unwrap();

        let (rf_id, mem_id) = (rf, mem);
        let preload = move |m: &mut Machine<'_>| {
            m.set_input(a, 0x2b);
            m.set_input(b2, 0x2b); // sum == 0x56 != b except when faults flip it
            m.set_reg(rf_id, 3, 0x77);
            m.preload_mem(mem_id, 0x2b, 0xab);
        };
        let schedule = Schedule::build(&design).unwrap();
        let mut batch = BatchScreen::new(&design, schedule.clone(), preload, 10);
        let mut packed = PackedScreen::new(&design, schedule, preload, 10);

        let mut injs = Vec::new();
        for (id, net) in design.dp.iter_nets() {
            for bit in 0..net.width {
                for polarity in [Polarity::StuckAt0, Polarity::StuckAt1] {
                    injs.push(Injection {
                        net: id,
                        bit,
                        polarity,
                    });
                }
            }
        }
        assert!(injs.len() > MAX_LANES, "exercises multiple packed passes");
        for chunk in injs.chunks(MAX_LANES) {
            assert!(chunk.iter().all(|&i| packed.can_pack(i)));
            let got = packed.screen(chunk);
            let want = batch.detects_all(chunk);
            assert_eq!(
                got, want,
                "packed {got:#018x} != serial {want:#018x} for chunk starting {:?}",
                chunk[0]
            );
        }
    }

    /// Out-of-bus stuck lines are rejected by the packing predicate.
    #[test]
    fn can_pack_rejects_out_of_range_lines() {
        let mut dpb = DpBuilder::new("dp");
        let a = dpb.input("a", 8);
        let r = dpb.reg("r", a);
        dpb.mark_output(r);
        let dp = dpb.finish().unwrap();
        let ctl = CtlBuilder::new("ctl").finish().unwrap();
        let design = hltg_netlist::Design::new("t", dp, ctl);
        let schedule = Schedule::build(&design).unwrap();
        let packed = PackedScreen::new(&design, schedule, |_| {}, 4);
        let ok = Injection {
            net: a,
            bit: 7,
            polarity: Polarity::StuckAt1,
        };
        assert!(packed.can_pack(ok));
        assert!(!packed.can_pack(Injection { bit: 8, ..ok }));
        assert!(!packed.can_pack(Injection { bit: 64, ..ok }));
    }
}
