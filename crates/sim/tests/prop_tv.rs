//! Property-based tests of the three-valued algebra: soundness of `X` as
//! "either value" — the property the implication engine's correctness
//! rests on. Driven by deterministic seeded-PRNG case loops.

use hltg_core::SplitMix64;
use hltg_netlist::ctl::CtlOp;
use hltg_sim::tv::{eval_gate, V3};

const CASES: usize = 256;

const V3S: [V3; 3] = [V3::Zero, V3::One, V3::X];

const GATES: [CtlOp; 6] = [
    CtlOp::And,
    CtlOp::Or,
    CtlOp::Nand,
    CtlOp::Nor,
    CtlOp::Xor,
    CtlOp::Xnor,
];

fn v3(rng: &mut SplitMix64) -> V3 {
    V3S[rng.gen_index(V3S.len())]
}

fn inputs(rng: &mut SplitMix64) -> Vec<V3> {
    (0..1 + rng.gen_index(4)).map(|_| v3(rng)).collect()
}

/// All boolean completions of a three-valued input vector.
fn completions(inputs: &[V3]) -> Vec<Vec<V3>> {
    let mut out = vec![Vec::new()];
    for &v in inputs {
        let choices = match v {
            V3::X => vec![V3::Zero, V3::One],
            known => vec![known],
        };
        out = out
            .into_iter()
            .flat_map(|prefix| {
                choices.iter().map(move |&c| {
                    let mut p = prefix.clone();
                    p.push(c);
                    p
                })
            })
            .collect();
    }
    out
}

/// Soundness: if the three-valued evaluation is known, every boolean
/// completion of the inputs evaluates to that value.
#[test]
fn known_outputs_hold_for_all_completions() {
    let mut rng = SplitMix64::new(0x7e57_0001);
    for _ in 0..CASES {
        let op = GATES[rng.gen_index(GATES.len())];
        let inputs = inputs(&mut rng);
        let abstract_out = eval_gate(op, &inputs);
        if let Some(expected) = abstract_out.to_bool() {
            for completion in completions(&inputs) {
                let concrete = eval_gate(op, &completion)
                    .to_bool()
                    .expect("fully known inputs give a known output");
                assert_eq!(concrete, expected, "{op:?} {completion:?}");
            }
        }
    }
}

/// Precision: if every completion agrees, the three-valued evaluation
/// is allowed to be X only when completions disagree — and for the
/// and/or family it is exact (returns known whenever possible).
#[test]
fn and_or_family_is_exact() {
    let mut rng = SplitMix64::new(0x7e57_0002);
    for _ in 0..CASES {
        let op = [CtlOp::And, CtlOp::Or, CtlOp::Nand, CtlOp::Nor][rng.gen_index(4)];
        let inputs = inputs(&mut rng);
        let outs: Vec<bool> = completions(&inputs)
            .into_iter()
            .map(|c| eval_gate(op, &c).to_bool().expect("known"))
            .collect();
        let all_same = outs.iter().all(|&b| b == outs[0]);
        let abstract_out = eval_gate(op, &inputs);
        if all_same {
            assert_eq!(abstract_out.to_bool(), Some(outs[0]));
        } else {
            assert_eq!(abstract_out, V3::X);
        }
    }
}

/// Monotonicity: refining an X input never changes a known output.
#[test]
fn refinement_is_monotone() {
    let mut rng = SplitMix64::new(0x7e57_0003);
    for _ in 0..CASES {
        let op = GATES[rng.gen_index(GATES.len())];
        let inputs = inputs(&mut rng);
        let i = rng.gen_index(inputs.len());
        let to = rng.gen_bool(0.5);
        let before = eval_gate(op, &inputs);
        if inputs[i] == V3::X {
            let mut refined = inputs.clone();
            refined[i] = V3::from_bool(to);
            let after = eval_gate(op, &refined);
            if let Some(v) = before.to_bool() {
                assert_eq!(after.to_bool(), Some(v));
            }
        }
    }
}

/// The V3 operators agree with bool on known values and are commutative.
#[test]
fn operators_commute() {
    for a in V3S {
        for b in V3S {
            assert_eq!(a.and(b), b.and(a));
            assert_eq!(a.or(b), b.or(a));
            assert_eq!(a.xor(b), b.xor(a));
            assert_eq!(a.not().not(), a);
        }
    }
}
