//! Property-based tests of the three-valued algebra: soundness of `X` as
//! "either value" — the property the implication engine's correctness
//! rests on.

use hltg_netlist::ctl::CtlOp;
use hltg_sim::tv::{eval_gate, V3};
use proptest::prelude::*;

fn v3() -> impl Strategy<Value = V3> {
    prop_oneof![Just(V3::Zero), Just(V3::One), Just(V3::X)]
}

fn gates() -> impl Strategy<Value = CtlOp> {
    prop_oneof![
        Just(CtlOp::And),
        Just(CtlOp::Or),
        Just(CtlOp::Nand),
        Just(CtlOp::Nor),
        Just(CtlOp::Xor),
        Just(CtlOp::Xnor),
    ]
}

/// All boolean completions of a three-valued input vector.
fn completions(inputs: &[V3]) -> Vec<Vec<V3>> {
    let mut out = vec![Vec::new()];
    for &v in inputs {
        let choices = match v {
            V3::X => vec![V3::Zero, V3::One],
            known => vec![known],
        };
        out = out
            .into_iter()
            .flat_map(|prefix| {
                choices.iter().map(move |&c| {
                    let mut p = prefix.clone();
                    p.push(c);
                    p
                })
            })
            .collect();
    }
    out
}

proptest! {
    /// Soundness: if the three-valued evaluation is known, every boolean
    /// completion of the inputs evaluates to that value.
    #[test]
    fn known_outputs_hold_for_all_completions(
        op in gates(),
        inputs in prop::collection::vec(v3(), 1..5),
    ) {
        let abstract_out = eval_gate(op, &inputs);
        if let Some(expected) = abstract_out.to_bool() {
            for completion in completions(&inputs) {
                let concrete = eval_gate(op, &completion)
                    .to_bool()
                    .expect("fully known inputs give a known output");
                prop_assert_eq!(concrete, expected, "{:?} {:?}", op, completion);
            }
        }
    }

    /// Precision: if every completion agrees, the three-valued evaluation
    /// is allowed to be X only when completions disagree — and for the
    /// and/or family it is exact (returns known whenever possible).
    #[test]
    fn and_or_family_is_exact(
        op in prop_oneof![Just(CtlOp::And), Just(CtlOp::Or), Just(CtlOp::Nand), Just(CtlOp::Nor)],
        inputs in prop::collection::vec(v3(), 1..5),
    ) {
        let outs: Vec<bool> = completions(&inputs)
            .into_iter()
            .map(|c| eval_gate(op, &c).to_bool().expect("known"))
            .collect();
        let all_same = outs.iter().all(|&b| b == outs[0]);
        let abstract_out = eval_gate(op, &inputs);
        if all_same {
            prop_assert_eq!(abstract_out.to_bool(), Some(outs[0]));
        } else {
            prop_assert_eq!(abstract_out, V3::X);
        }
    }

    /// Monotonicity: refining an X input never changes a known output.
    #[test]
    fn refinement_is_monotone(
        op in gates(),
        inputs in prop::collection::vec(v3(), 1..5),
        pick in any::<prop::sample::Index>(),
        to in any::<bool>(),
    ) {
        let before = eval_gate(op, &inputs);
        let i = pick.index(inputs.len());
        if inputs[i] == V3::X {
            let mut refined = inputs.clone();
            refined[i] = V3::from_bool(to);
            let after = eval_gate(op, &refined);
            if let Some(v) = before.to_bool() {
                prop_assert_eq!(after.to_bool(), Some(v));
            }
        }
    }

    /// The V3 operators agree with bool on known values and are commutative.
    #[test]
    fn operators_commute(a in v3(), b in v3()) {
        prop_assert_eq!(a.and(b), b.and(a));
        prop_assert_eq!(a.or(b), b.or(a));
        prop_assert_eq!(a.xor(b), b.xor(a));
        prop_assert_eq!(a.not().not(), a);
    }
}
