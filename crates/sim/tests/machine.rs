//! Direct tests of the machine semantics: sequential commit ordering,
//! enables/clears, architectural write masking, reset, and accessors.

use hltg_netlist::ctl::CtlBuilder;
use hltg_netlist::dp::{DpBuilder, RegSpec};
use hltg_netlist::{Design, Stage};
use hltg_sim::Machine;

/// reg with enable and clear wired to control inputs driven by the
/// controller's primary inputs (via a trivial pass-through controller).
fn gated_reg_design() -> (Design, hltg_netlist::dp::DpNetId, hltg_netlist::dp::DpNetId) {
    let mut b = DpBuilder::new("dp");
    b.set_stage(Stage::new(0));
    let d = b.input("d", 8);
    let en = b.ctrl("en");
    let clr = b.ctrl("clr");
    let q = b.reg_spec(
        "q",
        d,
        RegSpec {
            init: 0x55,
            has_enable: true,
            has_clear: true,
            clear_val: 0xaa,
        },
        Some(en),
        Some(clr),
    );
    b.mark_output(q);
    let dp = b.finish().unwrap();
    let mut cb = CtlBuilder::new("ctl");
    let i_en = cb.cpi("i_en");
    let i_clr = cb.cpi("i_clr");
    cb.mark_ctrl_output(i_en);
    cb.mark_ctrl_output(i_clr);
    let ctl = cb.finish().unwrap();
    let mut design = Design::new("t", dp, ctl);
    design.bind_ctrl("i_en", "en").unwrap();
    design.bind_ctrl("i_clr", "clr").unwrap();
    (design, d, q)
}

#[test]
fn register_reset_hold_load_clear() {
    let (design, d, q) = gated_reg_design();
    let mut m = Machine::new(&design).unwrap();
    m.set_input(d, 0x17);
    // Unbound CPIs read 0: enable low -> hold the reset value.
    m.step();
    assert_eq!(m.dp_value(q), 0x55, "reset value visible");
    m.step();
    assert_eq!(m.dp_value(q), 0x55, "hold with enable low");
    // There is no way to drive unbound CPIs from outside; rebuild with the
    // enable tied by binding to a dp input instead for the load phase.
    let _ = q;
}

/// Same-cycle semantics: a register's output is the *previous* state while
/// its input is being sampled — two registers in series delay by exactly
/// two cycles.
#[test]
fn series_registers_delay_two_cycles() {
    let mut b = DpBuilder::new("dp");
    let d = b.input("d", 8);
    let r1 = b.reg("r1", d);
    let r2 = b.reg("r2", r1);
    b.mark_output(r2);
    let dp = b.finish().unwrap();
    let ctl = CtlBuilder::new("ctl").finish().unwrap();
    let design = Design::new("t", dp, ctl);
    let mut m = Machine::new(&design).unwrap();
    m.set_input(d, 9);
    let o0 = m.step();
    let o1 = m.step();
    let o2 = m.step();
    assert_eq!(o0.values[0], 0);
    assert_eq!(o1.values[0], 0);
    assert_eq!(o2.values[0], 9);
}

#[test]
fn memory_write_masking_merges_lanes() {
    let mut b = DpBuilder::new("dp");
    let mem = b.arch_mem("m", 32);
    let addr = b.input("addr", 8);
    let data = b.input("data", 32);
    let mask = b.input("mask", 4);
    let we = b.ctrl("we");
    b.mem_write("wr", mem, addr, data, mask, we);
    let rd = b.mem_read("rd", mem, addr);
    b.mark_output(rd);
    let dp = b.finish().unwrap();
    let mut cb = CtlBuilder::new("ctl");
    let go = cb.cpi("go");
    cb.mark_ctrl_output(go);
    let ctl = cb.finish().unwrap();
    let mut design = Design::new("t", dp, ctl);
    design.bind_ctrl("go", "we").unwrap();
    let mut m = Machine::new(&design).unwrap();
    // Seed the word, then overwrite one byte lane only. `we` is an unbound
    // CPI (0), so preload the memory and watch reads; then flip we through
    // the state directly is impossible — drive the write via preload
    // semantics instead:
    m.preload_mem(hltg_netlist::dp::ArchId(0), 5, 0xdead_beef);
    m.set_input(addr, 5);
    m.step();
    assert_eq!(m.dp_value(rd), 0xdead_beef);
    // Reads of unwritten addresses are zero.
    m.set_input(addr, 6);
    m.step();
    assert_eq!(m.dp_value(rd), 0);
}

#[test]
fn reset_restores_everything() {
    let mut b = DpBuilder::new("dp");
    let d = b.input("d", 16);
    let r = b.reg("r", d);
    b.mark_output(r);
    let rf = b.arch_regfile("rf", 4, 16, false);
    let a0 = b.constant("a0", 2, 1);
    let rv = b.rf_read("rv", rf, a0);
    b.mark_output(rv);
    let dp = b.finish().unwrap();
    let ctl = CtlBuilder::new("ctl").finish().unwrap();
    let design = Design::new("t", dp, ctl);
    let mut m = Machine::new(&design).unwrap();
    m.set_input(d, 0x1234);
    m.set_reg(hltg_netlist::dp::ArchId(0), 1, 77);
    m.step();
    m.step();
    assert_eq!(m.dp_value(r), 0x1234);
    assert_eq!(m.read_reg(hltg_netlist::dp::ArchId(0), 1), 77);
    assert_eq!(m.cycle(), 2);
    m.reset();
    assert_eq!(m.cycle(), 0);
    assert_eq!(m.read_reg(hltg_netlist::dp::ArchId(0), 1), 0, "regfile zeroed");
    m.step();
    // The external input assignment survives reset; only state clears.
    assert_eq!(m.dp_value(r), 0, "register back to init until reloaded");
}

#[test]
#[should_panic(expected = "set_input on non-input net")]
fn set_input_rejects_internal_nets() {
    let mut b = DpBuilder::new("dp");
    let d = b.input("d", 8);
    let r = b.reg("r", d);
    b.mark_output(r);
    let dp = b.finish().unwrap();
    let ctl = CtlBuilder::new("ctl").finish().unwrap();
    let design = Design::new("t", dp, ctl);
    let mut m = Machine::new(&design).unwrap();
    m.set_input(r, 1);
}

#[test]
fn state_slots_are_exposed() {
    let mut b = DpBuilder::new("dp");
    let d = b.input("d", 8);
    let r = b.reg("r", d);
    b.mark_output(r);
    let dp = b.finish().unwrap();
    let mut cb = CtlBuilder::new("ctl");
    let i = cb.cpi("i");
    let q = cb.ff("q", i, false);
    cb.mark_cpo(q);
    let ctl = cb.finish().unwrap();
    let design = Design::new("t", dp, ctl);
    let m = Machine::new(&design).unwrap();
    let reg_mod = design.dp.net(r).driver.unwrap();
    assert_eq!(m.reg_index(reg_mod), Some(0));
    assert_eq!(m.ff_index(q), Some(0));
    assert_eq!(m.state().dp_regs.len(), 1);
    assert_eq!(m.state().ctl_ffs.len(), 1);
}
