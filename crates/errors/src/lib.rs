//! The bus single-stuck-line (bus SSL) synthetic design-error model.
//!
//! Following Van Campenhout et al. (and Bhattacharya & Hayes' bus-fault
//! model), a *bus SSL error* fixes one line of one word-level datapath bus
//! to a constant. The model's virtue for design verification is that the
//! number of error instances is **linear in the size of the circuit**, while
//! still correlating with realistic design errors (wrong connections,
//! dropped signals, inverted control).
//!
//! Two enumeration policies are provided:
//!
//! * [`EnumPolicy::RepresentativePerBus`] — two errors per bus (one line,
//!   both polarities), the linear-size population used for the Table 1
//!   reproduction;
//! * [`EnumPolicy::AllBits`] — every line of every bus, for exhaustive
//!   studies.
//!
//! # Example
//!
//! ```
//! use hltg_errors::{enumerate_stage_errors, EnumPolicy};
//! use hltg_netlist::Stage;
//! let dlx = hltg_dlx::DlxDesign::build();
//! let errors = enumerate_stage_errors(
//!     &dlx.design,
//!     &[Stage::new(2), Stage::new(3), Stage::new(4)],
//!     EnumPolicy::RepresentativePerBus,
//! );
//! assert!(!errors.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hltg_netlist::dp::{DpNetId, DpNetKind, DpOp};
use hltg_netlist::{Design, Stage};
use std::collections::{HashMap, HashSet};
use std::fmt;

pub use hltg_sim::{ErrorModel, Polarity};

/// Unique identifier of an error instance within an enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ErrorId(pub u32);

/// One bus single-stuck-line design error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusSslError {
    /// Identifier within the enumeration that produced it.
    pub id: ErrorId,
    /// The affected datapath bus.
    pub net: DpNetId,
    /// Name of the bus (for reports).
    pub net_name: String,
    /// Bus width.
    pub width: u32,
    /// The stuck line.
    pub bit: u32,
    /// Stuck polarity.
    pub polarity: Polarity,
    /// Pipe stage of the bus.
    pub stage: Stage,
}

impl BusSslError {
    /// The simulator injection realizing this error.
    pub fn to_injection(&self) -> hltg_sim::Injection {
        hltg_sim::Injection {
            net: self.net,
            bit: self.bit,
            polarity: self.polarity,
        }
    }
}

impl fmt::Display for BusSslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} {}[{}] {} @{}",
            self.id.0, self.net_name, self.bit, self.polarity, self.stage
        )
    }
}

/// How to enumerate bus SSL errors over a design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnumPolicy {
    /// One representative line per bus (the middle line), both polarities:
    /// an error population linear in circuit size, as the paper requires.
    RepresentativePerBus,
    /// Every line of every bus, both polarities.
    AllBits,
}

/// `true` if `net` is an error site: a word-level datapath bus (primary
/// input or module output), not a single-bit control wire from the
/// controller and not a constant.
fn is_error_site(design: &Design, net: DpNetId) -> bool {
    let n = design.dp.net(net);
    match n.kind {
        DpNetKind::Ctrl => false,
        DpNetKind::Input => true,
        DpNetKind::Internal => {
            let driver = n.driver.expect("validated internal net");
            // Constants are not buses that can be mis-wired meaningfully at
            // this level; every other module output is.
            !matches!(
                design.dp.module(driver).op,
                hltg_netlist::dp::DpOp::Const(_)
            )
        }
    }
}

/// Enumerates bus SSL errors on every datapath bus belonging to one of
/// `stages`.
///
/// Buses are visited in net order; for each bus the policy decides which
/// lines are included, and each included line yields a stuck-at-0 and a
/// stuck-at-1 instance.
pub fn enumerate_stage_errors(
    design: &Design,
    stages: &[Stage],
    policy: EnumPolicy,
) -> Vec<BusSslError> {
    let mut out = Vec::new();
    for (id, net) in design.dp.iter_nets() {
        if !stages.contains(&net.stage) || !is_error_site(design, id) {
            continue;
        }
        let bits: Vec<u32> = match policy {
            EnumPolicy::RepresentativePerBus => vec![net.width / 2],
            EnumPolicy::AllBits => (0..net.width).collect(),
        };
        for bit in bits {
            for polarity in [Polarity::StuckAt0, Polarity::StuckAt1] {
                out.push(BusSslError {
                    id: ErrorId(out.len() as u32),
                    net: id,
                    net_name: net.name.clone(),
                    width: net.width,
                    bit,
                    polarity,
                    stage: net.stage,
                });
            }
        }
    }
    out
}

/// `true` if the error is *structurally redundant*: the stuck line always
/// carries the stuck value in the error-free machine, so the erroneous
/// machine is behaviourally identical and no test can exist. This covers
/// stuck-at-0 errors on lines that are constant zero by construction —
/// zero-extension upper bits and lines below a constant left-shift.
///
/// # Examples
///
/// ```
/// # use hltg_errors::*;
/// let dlx = hltg_dlx::DlxDesign::build();
/// let errors = enumerate_all_errors(&dlx.design, EnumPolicy::RepresentativePerBus);
/// let redundant = errors.iter().filter(|e| is_structurally_redundant(&dlx.design, e)).count();
/// assert!(redundant > 0);
/// ```
pub fn is_structurally_redundant(design: &Design, error: &BusSslError) -> bool {
    let mut visited = HashSet::new();
    match error.polarity {
        Polarity::StuckAt0 => {
            constant_line(design, error.net, error.bit, &mut visited) == Some(false)
        }
        // A constant-one line would be the dual case; none of our module
        // semantics produce one.
        Polarity::StuckAt1 => {
            constant_line(design, error.net, error.bit, &mut visited) == Some(true)
        }
    }
}

/// Returns `Some(value)` if line `bit` of `net` provably always carries
/// `value`, `None` if unknown. Structural walk over the pass-through
/// operators; `visited` guards against revisiting a `(net, line)` site, so
/// reconvergent fanout (and a hypothetical structural loop) terminates
/// instead of blowing the walk up — the former depth bound both risked
/// exponential re-walks through shared structure and made the verdict
/// incomplete for deep but perfectly provable constant chains.
fn constant_line(
    design: &Design,
    net: DpNetId,
    bit: u32,
    visited: &mut HashSet<(DpNetId, u32)>,
) -> Option<bool> {
    use hltg_netlist::dp::DpOp;
    if !visited.insert((net, bit)) {
        // Already on the walk: a revisit proves nothing new.
        return None;
    }
    let n = design.dp.net(net);
    let driver = n.driver?;
    let m = design.dp.module(driver);
    match m.op {
        DpOp::Const(v) => Some((v >> bit) & 1 == 1),
        DpOp::ZeroExt => {
            let w = design.dp.net(m.inputs[0]).width;
            if bit >= w {
                Some(false)
            } else {
                constant_line(design, m.inputs[0], bit, visited)
            }
        }
        DpOp::Sll => {
            // Left shift by a constant amount zeroes the low lines.
            let amt = design.dp.net(m.inputs[1]).driver.and_then(|d| {
                match design.dp.module(d).op {
                    DpOp::Const(v) => Some(v as u32),
                    _ => None,
                }
            })?;
            if bit < amt {
                Some(false)
            } else {
                None
            }
        }
        DpOp::Slice { lo } => constant_line(design, m.inputs[0], lo + bit, visited),
        DpOp::Concat => {
            let mut off = 0;
            for &inp in &m.inputs {
                let w = design.dp.net(inp).width;
                if bit < off + w {
                    return constant_line(design, inp, bit - off, visited);
                }
                off += w;
            }
            None
        }
        _ => None,
    }
}

/// One screening class over an enumerated error population (indices into
/// the enumeration that produced it).
///
/// Classes collapse the error list the way classical fault collapsing
/// shrinks fault lists: errors whose stuck lines are tied together by
/// pass-through structure — or are sibling lines of the same bus — tend to
/// be detected by the same test sequence, so the campaign generates a test
/// for the *representative* and screens the remaining members by exact
/// dual simulation of that test first, falling back to full TG only for
/// members the test misses. Classes are a **heuristic** grouping: campaign
/// correctness never rests on them, because membership alone never marks
/// an error detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorClass {
    /// Index of the representative: the first member in enumeration order.
    pub representative: usize,
    /// All member indices, in enumeration order (representative first).
    pub members: Vec<usize>,
}

/// Walks the pass-through structure (zero-extension low lines, slices,
/// concatenations) from `(net, bit)` back to the driving site it is wired
/// to. Reconvergence-safe for the same reason as [`constant_line`].
fn canonical_site(design: &Design, net: DpNetId, bit: u32) -> (DpNetId, u32) {
    let mut cur = (net, bit);
    let mut seen = HashSet::new();
    while seen.insert(cur) {
        let Some(driver) = design.dp.net(cur.0).driver else {
            break;
        };
        let m = design.dp.module(driver);
        cur = match m.op {
            DpOp::ZeroExt if cur.1 < design.dp.net(m.inputs[0]).width => (m.inputs[0], cur.1),
            DpOp::Slice { lo } => (m.inputs[0], lo + cur.1),
            DpOp::Concat => {
                let mut off = 0;
                let mut next = cur;
                for &inp in &m.inputs {
                    let w = design.dp.net(inp).width;
                    if cur.1 < off + w {
                        next = (inp, cur.1 - off);
                        break;
                    }
                    off += w;
                }
                if next == cur {
                    break;
                }
                next
            }
            _ => break,
        };
    }
    cur
}

/// Groups `errors` into screening classes: two errors share a class when
/// their stuck lines resolve to the same canonical pass-through site
/// ([`canonical_site`]) with the same polarity. Under
/// [`EnumPolicy::AllBits`] this also merges sibling lines of one bus onto
/// its driving site — the same-net / adjacent-bit dominance of classical
/// fault collapsing. Classes come back ordered by representative, and the
/// union of `members` is exactly `0..errors.len()`.
pub fn collapse_errors(design: &Design, errors: &[BusSslError]) -> Vec<ErrorClass> {
    let mut classes: Vec<ErrorClass> = Vec::new();
    let mut by_key: HashMap<(DpNetId, Polarity), usize> = HashMap::new();
    for (i, e) in errors.iter().enumerate() {
        let (root, _) = canonical_site(design, e.net, e.bit);
        let slot = *by_key.entry((root, e.polarity)).or_insert_with(|| {
            classes.push(ErrorClass {
                representative: i,
                members: Vec::new(),
            });
            classes.len() - 1
        });
        classes[slot].members.push(i);
    }
    classes
}

/// Enumerates bus SSL errors over every stage of the datapath.
pub fn enumerate_all_errors(design: &Design, policy: EnumPolicy) -> Vec<BusSslError> {
    let max_stage = design
        .dp
        .iter_nets()
        .map(|(_, n)| n.stage.index())
        .max()
        .unwrap_or(0);
    let stages: Vec<Stage> = (0..=max_stage as u8).map(Stage::new).collect();
    enumerate_stage_errors(design, &stages, policy)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Design {
        use hltg_netlist::ctl::CtlBuilder;
        use hltg_netlist::dp::DpBuilder;
        let mut b = DpBuilder::new("dp");
        b.set_stage(Stage::new(0));
        let a = b.input("a", 8);
        let c = b.input("c", 8);
        let s = b.add("s", a, c);
        b.set_stage(Stage::new(1));
        let k = b.constant("k", 8, 1);
        let t = b.add("t", s, k);
        b.mark_output(t);
        let dp = b.finish().unwrap();
        let ctl = CtlBuilder::new("ctl").finish().unwrap();
        Design::new("toy", dp, ctl)
    }

    #[test]
    fn representative_policy_is_linear() {
        let d = toy();
        let errs = enumerate_all_errors(&d, EnumPolicy::RepresentativePerBus);
        // Buses: a, c, s.y, t.y (constant k.y excluded) -> 4 × 2 polarities.
        assert_eq!(errs.len(), 8);
        // Middle line of an 8-bit bus.
        assert!(errs.iter().all(|e| e.bit == 4));
    }

    #[test]
    fn all_bits_policy_covers_every_line() {
        let d = toy();
        let errs = enumerate_all_errors(&d, EnumPolicy::AllBits);
        assert_eq!(errs.len(), 4 * 8 * 2);
    }

    #[test]
    fn stage_filter() {
        let d = toy();
        let errs = enumerate_stage_errors(&d, &[Stage::new(1)], EnumPolicy::RepresentativePerBus);
        // Only t.y lives in stage 1 (k is a constant).
        assert_eq!(errs.len(), 2);
        assert!(errs.iter().all(|e| e.net_name == "t.y"));
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let d = toy();
        let errs = enumerate_all_errors(&d, EnumPolicy::AllBits);
        for (i, e) in errs.iter().enumerate() {
            assert_eq!(e.id.0 as usize, i);
        }
    }

    #[test]
    fn display_format() {
        let d = toy();
        let errs = enumerate_all_errors(&d, EnumPolicy::RepresentativePerBus);
        let s = errs[0].to_string();
        assert!(s.contains("sa0") && s.contains("[4]"), "{s}");
    }

    /// Reconvergent toy: an 8-bit value whose upper nibble is zero by
    /// construction is sliced twice and re-concatenated, and the chain is
    /// then wrapped deeper than the old depth limit of 8. The visited-set
    /// walk both terminates on the reconvergent diamond and proves the
    /// deep constant lines the depth-bounded walk gave up on.
    #[test]
    fn constant_line_handles_reconvergent_and_deep_chains() {
        use hltg_netlist::ctl::CtlBuilder;
        use hltg_netlist::dp::DpBuilder;
        let mut b = DpBuilder::new("dp");
        b.set_stage(Stage::new(0));
        let a = b.input("a", 4);
        let x = b.zero_ext("x", a, 8); // x[4..8] == 0 always
        let hi1 = b.slice("hi1", x, 4, 4);
        let hi2 = b.slice("hi2", x, 4, 4);
        let mut y = b.concat("y", &[hi1, hi2]); // reconverges on x
        for i in 0..12 {
            // A pass-through chain deeper than the former depth bound.
            let s = b.slice(format!("s{i}"), y, 0, 8);
            y = b.concat(format!("c{i}"), &[s]);
        }
        b.mark_output(y);
        let dp = b.finish().unwrap();
        let ctl = CtlBuilder::new("ctl").finish().unwrap();
        let d = Design::new("reconv", dp, ctl);

        for bit in 0..8 {
            let err = BusSslError {
                id: ErrorId(0),
                net: y,
                net_name: "y".into(),
                width: 8,
                bit,
                polarity: Polarity::StuckAt0,
                stage: Stage::new(0),
            };
            // Every line of y traces back through >8 pass-through hops and
            // the reconvergent diamond to a zero-extension upper line.
            assert!(
                is_structurally_redundant(&d, &err),
                "line {bit} provably constant zero but not proven"
            );
            let sa1 = BusSslError {
                polarity: Polarity::StuckAt1,
                ..err
            };
            assert!(!is_structurally_redundant(&d, &sa1));
        }
    }

    /// Collapsing groups sa0/sa1 pairs by canonical site and partitions the
    /// population exactly.
    #[test]
    fn collapse_partitions_and_merges_pass_through() {
        use hltg_netlist::ctl::CtlBuilder;
        use hltg_netlist::dp::DpBuilder;
        let mut b = DpBuilder::new("dp");
        b.set_stage(Stage::new(0));
        let a = b.input("a", 8);
        let c = b.input("c", 8);
        let s = b.add("s", a, c);
        let v = b.slice("v", s, 0, 8); // pass-through alias of s
        b.mark_output(v);
        let dp = b.finish().unwrap();
        let ctl = CtlBuilder::new("ctl").finish().unwrap();
        let d = Design::new("alias", dp, ctl);

        let errs = enumerate_all_errors(&d, EnumPolicy::RepresentativePerBus);
        let classes = collapse_errors(&d, &errs);
        // Membership partitions 0..len in order.
        let mut seen: Vec<usize> = classes.iter().flat_map(|c| c.members.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..errs.len()).collect::<Vec<_>>());
        for c in &classes {
            assert_eq!(c.representative, c.members[0]);
            let polarity = errs[c.members[0]].polarity;
            assert!(c.members.iter().all(|&i| errs[i].polarity == polarity));
        }
        // s and its slice alias v collapse; a, c, s+v -> 3 sites x 2
        // polarities.
        assert_eq!(classes.len(), 6, "{classes:?}");
        let merged = classes
            .iter()
            .find(|c| c.members.len() == 2)
            .expect("s/v class");
        assert_eq!(errs[merged.members[0]].net, s);
        assert_eq!(errs[merged.members[1]].net, v);
    }
}

/// Enumerates **bus order errors** (two adjacent lines of a bus swapped —
/// modelling a miswired bus) on the buses of `stages`. One representative
/// adjacent swap per bus, at the middle of the bus.
pub fn enumerate_bus_order_errors(design: &Design, stages: &[Stage]) -> Vec<ErrorModel> {
    let mut out = Vec::new();
    for (id, net) in design.dp.iter_nets() {
        if !stages.contains(&net.stage) || !is_error_site(design, id) || net.width < 2 {
            continue;
        }
        let low = (net.width / 2).min(net.width - 2);
        out.push(ErrorModel::BusOrder {
            net: id,
            low,
            high: low + 1,
        });
    }
    out
}

/// The plausible wrong-operator substitutions for a module, from the
/// extended error-model family: operators a designer could plausibly have
/// confused (add/sub, and/or, xor/xnor, shift direction, comparison sense).
pub fn plausible_substitutions(op: &DpOp) -> Vec<DpOp> {
    match op {
        DpOp::Add => vec![DpOp::Sub],
        DpOp::Sub => vec![DpOp::Add],
        DpOp::And => vec![DpOp::Or],
        DpOp::Or => vec![DpOp::And],
        DpOp::Xor => vec![DpOp::Xnor],
        DpOp::Xnor => vec![DpOp::Xor],
        DpOp::Nand => vec![DpOp::Nor],
        DpOp::Nor => vec![DpOp::Nand],
        DpOp::Sll => vec![DpOp::Srl],
        DpOp::Srl => vec![DpOp::Sll, DpOp::Sra],
        DpOp::Sra => vec![DpOp::Srl],
        DpOp::Eq => vec![DpOp::Ne],
        DpOp::Ne => vec![DpOp::Eq],
        DpOp::Lt => vec![DpOp::Le, DpOp::Ge],
        DpOp::Le => vec![DpOp::Lt],
        DpOp::Gt => vec![DpOp::Ge],
        DpOp::Ge => vec![DpOp::Gt, DpOp::Lt],
        DpOp::LtU => vec![DpOp::GeU, DpOp::Lt],
        DpOp::GeU => vec![DpOp::LtU],
        _ => Vec::new(),
    }
}

/// Enumerates **module substitution errors** (a module implementing a
/// plausibly-confusable wrong operation) in `stages`.
pub fn enumerate_module_substitutions(design: &Design, stages: &[Stage]) -> Vec<ErrorModel> {
    let mut out = Vec::new();
    for (id, m) in design.dp.iter_modules() {
        if !stages.contains(&m.stage) {
            continue;
        }
        for with in plausible_substitutions(&m.op) {
            out.push(ErrorModel::ModuleSubstitution { module: id, with });
        }
    }
    out
}

#[cfg(test)]
mod extended_tests {
    use super::*;

    #[test]
    fn extended_models_enumerate_on_dlx() {
        let dlx = hltg_dlx::DlxDesign::build();
        let stages = [Stage::new(2), Stage::new(3), Stage::new(4)];
        let order = enumerate_bus_order_errors(&dlx.design, &stages);
        let subs = enumerate_module_substitutions(&dlx.design, &stages);
        assert!(order.len() > 30, "{}", order.len());
        assert!(subs.len() > 15, "{}", subs.len());
        // Substitutions preserve arity by construction: every candidate op
        // for a binary module is binary.
        for e in &subs {
            if let ErrorModel::ModuleSubstitution { module, with } = e {
                let m = dlx.design.dp.module(*module);
                assert_eq!(m.inputs.len(), 2, "{:?} -> {with:?}", m.op);
            }
        }
    }

    #[test]
    fn substitutions_are_symmetric_where_expected() {
        assert!(plausible_substitutions(&DpOp::Add).contains(&DpOp::Sub));
        assert!(plausible_substitutions(&DpOp::Sub).contains(&DpOp::Add));
        assert!(plausible_substitutions(&DpOp::Mux).is_empty());
        assert!(plausible_substitutions(&DpOp::Const(3)).is_empty());
    }
}
