//! The bus single-stuck-line (bus SSL) synthetic design-error model.
//!
//! Following Van Campenhout et al. (and Bhattacharya & Hayes' bus-fault
//! model), a *bus SSL error* fixes one line of one word-level datapath bus
//! to a constant. The model's virtue for design verification is that the
//! number of error instances is **linear in the size of the circuit**, while
//! still correlating with realistic design errors (wrong connections,
//! dropped signals, inverted control).
//!
//! Two enumeration policies are provided:
//!
//! * [`EnumPolicy::RepresentativePerBus`] — two errors per bus (one line,
//!   both polarities), the linear-size population used for the Table 1
//!   reproduction;
//! * [`EnumPolicy::AllBits`] — every line of every bus, for exhaustive
//!   studies.
//!
//! # Example
//!
//! ```
//! use hltg_errors::{enumerate_stage_errors, EnumPolicy};
//! use hltg_netlist::Stage;
//! let dlx = hltg_dlx::DlxDesign::build();
//! let errors = enumerate_stage_errors(
//!     &dlx.design,
//!     &[Stage::new(2), Stage::new(3), Stage::new(4)],
//!     EnumPolicy::RepresentativePerBus,
//! );
//! assert!(!errors.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hltg_netlist::dp::{DpNetId, DpNetKind, DpOp};
use hltg_netlist::{Design, Stage};
use std::fmt;

pub use hltg_sim::{ErrorModel, Polarity};

/// Unique identifier of an error instance within an enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ErrorId(pub u32);

/// One bus single-stuck-line design error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusSslError {
    /// Identifier within the enumeration that produced it.
    pub id: ErrorId,
    /// The affected datapath bus.
    pub net: DpNetId,
    /// Name of the bus (for reports).
    pub net_name: String,
    /// Bus width.
    pub width: u32,
    /// The stuck line.
    pub bit: u32,
    /// Stuck polarity.
    pub polarity: Polarity,
    /// Pipe stage of the bus.
    pub stage: Stage,
}

impl BusSslError {
    /// The simulator injection realizing this error.
    pub fn to_injection(&self) -> hltg_sim::Injection {
        hltg_sim::Injection {
            net: self.net,
            bit: self.bit,
            polarity: self.polarity,
        }
    }
}

impl fmt::Display for BusSslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} {}[{}] {} @{}",
            self.id.0, self.net_name, self.bit, self.polarity, self.stage
        )
    }
}

/// How to enumerate bus SSL errors over a design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnumPolicy {
    /// One representative line per bus (the middle line), both polarities:
    /// an error population linear in circuit size, as the paper requires.
    RepresentativePerBus,
    /// Every line of every bus, both polarities.
    AllBits,
}

/// `true` if `net` is an error site: a word-level datapath bus (primary
/// input or module output), not a single-bit control wire from the
/// controller and not a constant.
fn is_error_site(design: &Design, net: DpNetId) -> bool {
    let n = design.dp.net(net);
    match n.kind {
        DpNetKind::Ctrl => false,
        DpNetKind::Input => true,
        DpNetKind::Internal => {
            let driver = n.driver.expect("validated internal net");
            // Constants are not buses that can be mis-wired meaningfully at
            // this level; every other module output is.
            !matches!(
                design.dp.module(driver).op,
                hltg_netlist::dp::DpOp::Const(_)
            )
        }
    }
}

/// Enumerates bus SSL errors on every datapath bus belonging to one of
/// `stages`.
///
/// Buses are visited in net order; for each bus the policy decides which
/// lines are included, and each included line yields a stuck-at-0 and a
/// stuck-at-1 instance.
pub fn enumerate_stage_errors(
    design: &Design,
    stages: &[Stage],
    policy: EnumPolicy,
) -> Vec<BusSslError> {
    let mut out = Vec::new();
    for (id, net) in design.dp.iter_nets() {
        if !stages.contains(&net.stage) || !is_error_site(design, id) {
            continue;
        }
        let bits: Vec<u32> = match policy {
            EnumPolicy::RepresentativePerBus => vec![net.width / 2],
            EnumPolicy::AllBits => (0..net.width).collect(),
        };
        for bit in bits {
            for polarity in [Polarity::StuckAt0, Polarity::StuckAt1] {
                out.push(BusSslError {
                    id: ErrorId(out.len() as u32),
                    net: id,
                    net_name: net.name.clone(),
                    width: net.width,
                    bit,
                    polarity,
                    stage: net.stage,
                });
            }
        }
    }
    out
}

/// `true` if the error is *structurally redundant*: the stuck line always
/// carries the stuck value in the error-free machine, so the erroneous
/// machine is behaviourally identical and no test can exist. This covers
/// stuck-at-0 errors on lines that are constant zero by construction —
/// zero-extension upper bits and lines below a constant left-shift.
///
/// # Examples
///
/// ```
/// # use hltg_errors::*;
/// let dlx = hltg_dlx::DlxDesign::build();
/// let errors = enumerate_all_errors(&dlx.design, EnumPolicy::RepresentativePerBus);
/// let redundant = errors.iter().filter(|e| is_structurally_redundant(&dlx.design, e)).count();
/// assert!(redundant > 0);
/// ```
pub fn is_structurally_redundant(design: &Design, error: &BusSslError) -> bool {
    match error.polarity {
        Polarity::StuckAt0 => constant_line(design, error.net, error.bit, 8) == Some(false),
        // A constant-one line would be the dual case; none of our module
        // semantics produce one.
        Polarity::StuckAt1 => constant_line(design, error.net, error.bit, 8) == Some(true),
    }
}

/// Returns `Some(value)` if line `bit` of `net` provably always carries
/// `value`, `None` if unknown. Depth-bounded structural walk.
fn constant_line(design: &Design, net: DpNetId, bit: u32, depth: u32) -> Option<bool> {
    use hltg_netlist::dp::DpOp;
    if depth == 0 {
        return None;
    }
    let n = design.dp.net(net);
    let driver = n.driver?;
    let m = design.dp.module(driver);
    match m.op {
        DpOp::Const(v) => Some((v >> bit) & 1 == 1),
        DpOp::ZeroExt => {
            let w = design.dp.net(m.inputs[0]).width;
            if bit >= w {
                Some(false)
            } else {
                constant_line(design, m.inputs[0], bit, depth - 1)
            }
        }
        DpOp::Sll => {
            // Left shift by a constant amount zeroes the low lines.
            let amt = design.dp.net(m.inputs[1]).driver.and_then(|d| {
                match design.dp.module(d).op {
                    DpOp::Const(v) => Some(v as u32),
                    _ => None,
                }
            })?;
            if bit < amt {
                Some(false)
            } else {
                None
            }
        }
        DpOp::Slice { lo } => constant_line(design, m.inputs[0], lo + bit, depth - 1),
        DpOp::Concat => {
            let mut off = 0;
            for &inp in &m.inputs {
                let w = design.dp.net(inp).width;
                if bit < off + w {
                    return constant_line(design, inp, bit - off, depth - 1);
                }
                off += w;
            }
            None
        }
        _ => None,
    }
}

/// Enumerates bus SSL errors over every stage of the datapath.
pub fn enumerate_all_errors(design: &Design, policy: EnumPolicy) -> Vec<BusSslError> {
    let max_stage = design
        .dp
        .iter_nets()
        .map(|(_, n)| n.stage.index())
        .max()
        .unwrap_or(0);
    let stages: Vec<Stage> = (0..=max_stage as u8).map(Stage::new).collect();
    enumerate_stage_errors(design, &stages, policy)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Design {
        use hltg_netlist::ctl::CtlBuilder;
        use hltg_netlist::dp::DpBuilder;
        let mut b = DpBuilder::new("dp");
        b.set_stage(Stage::new(0));
        let a = b.input("a", 8);
        let c = b.input("c", 8);
        let s = b.add("s", a, c);
        b.set_stage(Stage::new(1));
        let k = b.constant("k", 8, 1);
        let t = b.add("t", s, k);
        b.mark_output(t);
        let dp = b.finish().unwrap();
        let ctl = CtlBuilder::new("ctl").finish().unwrap();
        Design::new("toy", dp, ctl)
    }

    #[test]
    fn representative_policy_is_linear() {
        let d = toy();
        let errs = enumerate_all_errors(&d, EnumPolicy::RepresentativePerBus);
        // Buses: a, c, s.y, t.y (constant k.y excluded) -> 4 × 2 polarities.
        assert_eq!(errs.len(), 8);
        // Middle line of an 8-bit bus.
        assert!(errs.iter().all(|e| e.bit == 4));
    }

    #[test]
    fn all_bits_policy_covers_every_line() {
        let d = toy();
        let errs = enumerate_all_errors(&d, EnumPolicy::AllBits);
        assert_eq!(errs.len(), 4 * 8 * 2);
    }

    #[test]
    fn stage_filter() {
        let d = toy();
        let errs = enumerate_stage_errors(&d, &[Stage::new(1)], EnumPolicy::RepresentativePerBus);
        // Only t.y lives in stage 1 (k is a constant).
        assert_eq!(errs.len(), 2);
        assert!(errs.iter().all(|e| e.net_name == "t.y"));
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let d = toy();
        let errs = enumerate_all_errors(&d, EnumPolicy::AllBits);
        for (i, e) in errs.iter().enumerate() {
            assert_eq!(e.id.0 as usize, i);
        }
    }

    #[test]
    fn display_format() {
        let d = toy();
        let errs = enumerate_all_errors(&d, EnumPolicy::RepresentativePerBus);
        let s = errs[0].to_string();
        assert!(s.contains("sa0") && s.contains("[4]"), "{s}");
    }
}

/// Enumerates **bus order errors** (two adjacent lines of a bus swapped —
/// modelling a miswired bus) on the buses of `stages`. One representative
/// adjacent swap per bus, at the middle of the bus.
pub fn enumerate_bus_order_errors(design: &Design, stages: &[Stage]) -> Vec<ErrorModel> {
    let mut out = Vec::new();
    for (id, net) in design.dp.iter_nets() {
        if !stages.contains(&net.stage) || !is_error_site(design, id) || net.width < 2 {
            continue;
        }
        let low = (net.width / 2).min(net.width - 2);
        out.push(ErrorModel::BusOrder {
            net: id,
            low,
            high: low + 1,
        });
    }
    out
}

/// The plausible wrong-operator substitutions for a module, from the
/// extended error-model family: operators a designer could plausibly have
/// confused (add/sub, and/or, xor/xnor, shift direction, comparison sense).
pub fn plausible_substitutions(op: &DpOp) -> Vec<DpOp> {
    match op {
        DpOp::Add => vec![DpOp::Sub],
        DpOp::Sub => vec![DpOp::Add],
        DpOp::And => vec![DpOp::Or],
        DpOp::Or => vec![DpOp::And],
        DpOp::Xor => vec![DpOp::Xnor],
        DpOp::Xnor => vec![DpOp::Xor],
        DpOp::Nand => vec![DpOp::Nor],
        DpOp::Nor => vec![DpOp::Nand],
        DpOp::Sll => vec![DpOp::Srl],
        DpOp::Srl => vec![DpOp::Sll, DpOp::Sra],
        DpOp::Sra => vec![DpOp::Srl],
        DpOp::Eq => vec![DpOp::Ne],
        DpOp::Ne => vec![DpOp::Eq],
        DpOp::Lt => vec![DpOp::Le, DpOp::Ge],
        DpOp::Le => vec![DpOp::Lt],
        DpOp::Gt => vec![DpOp::Ge],
        DpOp::Ge => vec![DpOp::Gt, DpOp::Lt],
        DpOp::LtU => vec![DpOp::GeU, DpOp::Lt],
        DpOp::GeU => vec![DpOp::LtU],
        _ => Vec::new(),
    }
}

/// Enumerates **module substitution errors** (a module implementing a
/// plausibly-confusable wrong operation) in `stages`.
pub fn enumerate_module_substitutions(design: &Design, stages: &[Stage]) -> Vec<ErrorModel> {
    let mut out = Vec::new();
    for (id, m) in design.dp.iter_modules() {
        if !stages.contains(&m.stage) {
            continue;
        }
        for with in plausible_substitutions(&m.op) {
            out.push(ErrorModel::ModuleSubstitution { module: id, with });
        }
    }
    out
}

#[cfg(test)]
mod extended_tests {
    use super::*;

    #[test]
    fn extended_models_enumerate_on_dlx() {
        let dlx = hltg_dlx::DlxDesign::build();
        let stages = [Stage::new(2), Stage::new(3), Stage::new(4)];
        let order = enumerate_bus_order_errors(&dlx.design, &stages);
        let subs = enumerate_module_substitutions(&dlx.design, &stages);
        assert!(order.len() > 30, "{}", order.len());
        assert!(subs.len() > 15, "{}", subs.len());
        // Substitutions preserve arity by construction: every candidate op
        // for a binary module is binary.
        for e in &subs {
            if let ErrorModel::ModuleSubstitution { module, with } = e {
                let m = dlx.design.dp.module(*module);
                assert_eq!(m.inputs.len(), 2, "{:?} -> {with:?}", m.op);
            }
        }
    }

    #[test]
    fn substitutions_are_symmetric_where_expected() {
        assert!(plausible_substitutions(&DpOp::Add).contains(&DpOp::Sub));
        assert!(plausible_substitutions(&DpOp::Sub).contains(&DpOp::Add));
        assert!(plausible_substitutions(&DpOp::Mux).is_empty());
        assert!(plausible_substitutions(&DpOp::Const(3)).is_empty());
    }
}
