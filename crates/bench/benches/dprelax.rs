//! Bench for DPRELAX: discrete-relaxation convergence on a masked-adder
//! value-selection problem (the §V.B engine in isolation). Plain std
//! harness; run with `cargo bench --bench dprelax`.

use hltg_bench::harness::{bench, write_json_report};
use hltg_core::dprelax::{Activation, MemImage, RelaxEngine, RelaxGoal};
use hltg_core::SplitMix64;
use hltg_netlist::ctl::CtlBuilder;
use hltg_netlist::dp::DpBuilder;
use hltg_netlist::{Design, Stage};
use hltg_sim::{Injection, Polarity};
use std::hint::black_box;

fn masked_adder() -> (Design, hltg_netlist::dp::ArchId, hltg_netlist::dp::DpNetId) {
    let mut b = DpBuilder::new("dp");
    b.set_stage(Stage::new(0));
    let mem = b.arch_mem("m", 16);
    let a0 = b.constant("a0", 4, 0);
    let a1 = b.constant("a1", 4, 1);
    let a2 = b.constant("a2", 4, 2);
    let x = b.mem_read("x", mem, a0);
    let y = b.mem_read("y", mem, a1);
    let mask = b.mem_read("mask", mem, a2);
    let sum = b.add("sum", x, y);
    let anded = b.and("anded", sum, mask);
    let r = b.reg("r", anded);
    b.mark_output(r);
    let dp = b.finish().unwrap();
    let ctl = CtlBuilder::new("ctl").finish().unwrap();
    (Design::new("t", dp, ctl), mem, sum)
}

fn main() {
    let (design, mem, sum) = masked_adder();
    let inj = Injection {
        net: sum,
        bit: 7,
        polarity: Polarity::StuckAt0,
    };
    let results = vec![bench("dprelax_masked_adder", || {
        let mut engine = RelaxEngine::new(&design, inj, vec![(mem, MemImage::free())]);
        let goal = RelaxGoal {
            activation: Activation {
                net: sum,
                cycle: 0,
                bit: 7,
                want: true,
            },
            requirements: Vec::new(),
            horizon: 4,
        };
        let mut rng = SplitMix64::seed_from_u64(7);
        black_box(engine.solve(&goal, &mut rng, 64).unwrap())
    })];
    write_json_report("dprelax", &results);
}
