//! Benches for the campaign reuse subsystem: the `CTRLJUST` search memo
//! and the shared-prefix simulation cache. Plain std harness; run with
//! `cargo bench --bench cache`.
//!
//! The memo pair mirrors `generate_batch_of_8` from the campaign set with
//! the memo forced on/off, so the two sets stay comparable. The screen
//! pair replays one generated test against a 64-error `AllBits` slice,
//! either through a [`BatchScreen`] (one recorded good run, faulty replay
//! per error) or through a fresh good/bad machine pair per error (what
//! the campaign's screening loops did before the cache).

use hltg_bench::harness::{bench, bench_throughput, write_json_report};
use hltg_core::tg::{Outcome, TestCase, TestGenerator, TgConfig};
use hltg_dlx::DlxModel;
use hltg_errors::{enumerate_stage_errors, EnumPolicy};
use hltg_netlist::ProcessorModel;
use hltg_sim::{BatchScreen, Injection, Machine, PackedScreen, Schedule};
use std::hint::black_box;

fn preload(m: &mut Machine<'_>, model: &dyn ProcessorModel, test: &TestCase) {
    let pipe = model.pipeline();
    for &(addr, word) in &test.imem_image {
        m.preload_mem(pipe.imem, addr, u64::from(word));
    }
    for &(addr, value) in &test.dmem_image {
        m.preload_mem(pipe.dmem, addr, value);
    }
}

fn main() {
    let model = DlxModel::new();
    let stages = model.error_stages();
    let errors = enumerate_stage_errors(model.design(), &stages, EnumPolicy::RepresentativePerBus);
    let all_bits = enumerate_stage_errors(model.design(), &stages, EnumPolicy::AllBits);
    let schedule = Schedule::build(model.design()).expect("dlx levelizes");

    // One confirmed test to screen the population against.
    let mut tg = TestGenerator::new(&model, TgConfig::default());
    let Outcome::Detected(test) = tg.generate(&errors[0]) else {
        panic!("errors[0] is detectable");
    };
    let horizon = test.program.len() as u64 + 16;

    let mut results = Vec::new();
    for (name, memo) in [
        ("ctrljust_memo_batch_of_8", true),
        ("ctrljust_nomemo_batch_of_8", false),
    ] {
        let cfg = TgConfig {
            ctrljust_memo: memo,
            ..TgConfig::default()
        };
        results.push(bench(name, || {
            let mut tg = TestGenerator::new(&model, cfg.clone());
            for e in errors.iter().take(8) {
                black_box(tg.generate(e));
            }
        }));
    }
    results.push(bench("batch_screen_64_errors", || {
        let mut screen = BatchScreen::new(
            model.design(),
            schedule.clone(),
            |m| preload(m, &model, &test),
            horizon,
        );
        let mut hits = 0usize;
        for e in all_bits.iter().take(64) {
            if screen.detects(e.to_injection()) {
                hits += 1;
            }
        }
        black_box(hits)
    }));
    // The fault-parallel screen: the same 64 errors as lanes of one
    // bit-sliced pass. `bench_throughput` adds a screened-errors-per-
    // second figure (`elements_per_sec`) to the JSON report.
    let injections: Vec<Injection> = all_bits.iter().take(64).map(|e| e.to_injection()).collect();
    results.push(bench_throughput("packed_screen_64_errors", 64, || {
        let mut screen = PackedScreen::new(
            model.design(),
            schedule.clone(),
            |m| preload(m, &model, &test),
            horizon,
        );
        black_box(screen.screen(&injections).count_ones())
    }));
    results.push(bench("dual_pair_screen_64_errors", || {
        let mut hits = 0usize;
        for e in all_bits.iter().take(64) {
            let mut good = Machine::with_schedule(model.design(), schedule.clone());
            let mut bad = Machine::with_schedule(model.design(), schedule.clone());
            bad.set_injection(Some(e.to_injection()));
            preload(&mut good, &model, &test);
            preload(&mut bad, &model, &test);
            for _ in 0..horizon {
                if good.step() != bad.step() {
                    hits += 1;
                    break;
                }
            }
        }
        black_box(hits)
    }));
    write_json_report("cache", &results);
}
