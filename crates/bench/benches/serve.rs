//! Benches for the campaign service: what `hltg-serve`'s scheduling,
//! supervision and finalize machinery cost on top of raw generation.
//! Plain std harness; run with `cargo bench --bench serve`.
//!
//! The spool checkpoint is warmed before timing, so every timed
//! submission resumes all of its errors from the checkpoint and the
//! samples measure service overhead — job planning, shard claims,
//! heartbeats, the supervisor scan and the finalizing merge — not test
//! generation itself.

use hltg_bench::harness::{bench, write_json_report};
use hltg_serve::{serve_lines, Client, JobSpec, ServeConfig, Service};
use std::hint::black_box;
use std::io::Cursor;
use std::path::{Path, PathBuf};
use std::time::Duration;

const JOBS: usize = 16;

fn spool() -> PathBuf {
    std::env::temp_dir().join(format!("hltg_bench_serve_{}", std::process::id()))
}

fn cfg(spool: &Path) -> ServeConfig {
    ServeConfig {
        workers: 4,
        spool: spool.to_path_buf(),
        ..ServeConfig::default()
    }
}

fn tiny_job(i: usize) -> JobSpec {
    JobSpec {
        name: format!("bench-j{i:02}"),
        limit: Some(2),
        shard_size: 1,
        ..JobSpec::default()
    }
}

/// Submit all 16 jobs to a fresh service over the (shared) spool and
/// wait each one out.
fn run_once(spool: &Path) -> usize {
    let (service, _events) = Service::start(cfg(spool));
    let jobs: Vec<_> = (0..JOBS)
        .map(|i| service.submit(&tiny_job(i)).expect("accepted"))
        .collect();
    let mut completed = 0;
    for job in jobs {
        let done = service
            .wait_done(job, Duration::from_secs(60))
            .expect("job finishes");
        completed += done.completed;
    }
    service.drain();
    completed
}

fn main() {
    let spool = spool();
    let _ = std::fs::remove_dir_all(&spool);
    // Warm the checkpoint: after this, every bench-loop submission
    // resumes its whole population.
    run_once(&spool);

    let mut results = Vec::new();
    results.push(bench("serve_schedule_16_jobs", || {
        black_box(run_once(&spool))
    }));

    // The same warmed workload end to end over the line protocol:
    // request parsing, event emission and the drain handshake included.
    let mut input = String::new();
    for i in 0..JOBS {
        input.push_str(&Client::submit_line(&tiny_job(i)));
        input.push('\n');
    }
    input.push_str(&Client::shutdown_line(true));
    input.push('\n');
    results.push(bench("serve_line_protocol_16_jobs", || {
        let (service, events) = Service::start(cfg(&spool));
        let out = serve_lines(service, events, Cursor::new(input.clone()), Vec::new());
        black_box(out.len())
    }));

    write_json_report("serve", &results);
    let _ = std::fs::remove_dir_all(&spool);
}
