//! Bench for Table 1: end-to-end test generation per error and over a
//! small batch of the EX/MEM/WB population. Plain std harness; run with
//! `cargo bench --bench campaign`.

use hltg_bench::harness::{bench, write_json_report};
use hltg_core::tg::{TestGenerator, TgConfig};
use hltg_dlx::DlxModel;
use hltg_errors::{enumerate_stage_errors, EnumPolicy};
use hltg_netlist::ProcessorModel;
use std::hint::black_box;

fn main() {
    let model = DlxModel::new();
    let stages = model.error_stages();
    let errors = enumerate_stage_errors(model.design(), &stages, EnumPolicy::RepresentativePerBus);

    let mut results = Vec::new();
    // A typical quickly-detected error (the EX/MEM ALU bus).
    results.push(bench("generate_single_error", || {
        let mut tg = TestGenerator::new(&model, TgConfig::default());
        black_box(tg.generate(&errors[0]))
    }));
    results.push(bench("generate_batch_of_8", || {
        let mut tg = TestGenerator::new(&model, TgConfig::default());
        for e in errors.iter().take(8) {
            black_box(tg.generate(e));
        }
    }));
    write_json_report("campaign", &results);
}
