//! Bench for Table 1: end-to-end test generation per error and over a
//! small batch of the EX/MEM/WB population. Plain std harness; run with
//! `cargo bench --bench campaign`.

use hltg_bench::harness::{bench, write_json_report};
use hltg_core::tg::{TestGenerator, TgConfig};
use hltg_dlx::DlxDesign;
use hltg_errors::{enumerate_stage_errors, EnumPolicy};
use hltg_netlist::Stage;
use std::hint::black_box;

fn main() {
    let dlx = DlxDesign::build();
    let stages = [Stage::new(2), Stage::new(3), Stage::new(4)];
    let errors = enumerate_stage_errors(&dlx.design, &stages, EnumPolicy::RepresentativePerBus);

    let mut results = Vec::new();
    // A typical quickly-detected error (the EX/MEM ALU bus).
    results.push(bench("generate_single_error", || {
        let mut tg = TestGenerator::new(&dlx, TgConfig::default());
        black_box(tg.generate(&errors[0]))
    }));
    results.push(bench("generate_batch_of_8", || {
        let mut tg = TestGenerator::new(&dlx, TgConfig::default());
        for e in errors.iter().take(8) {
            black_box(tg.generate(e));
        }
    }));
    write_json_report("campaign", &results);
}
