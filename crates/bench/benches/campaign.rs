//! Criterion bench for Table 1: end-to-end test generation per error and
//! over a small batch of the EX/MEM/WB population.

use criterion::{criterion_group, criterion_main, Criterion};
use hltg_core::tg::{TestGenerator, TgConfig};
use hltg_dlx::DlxDesign;
use hltg_errors::{enumerate_stage_errors, EnumPolicy};
use hltg_netlist::Stage;
use std::hint::black_box;

fn bench_generate(c: &mut Criterion) {
    let dlx = DlxDesign::build();
    let stages = [Stage::new(2), Stage::new(3), Stage::new(4)];
    let errors = enumerate_stage_errors(&dlx.design, &stages, EnumPolicy::RepresentativePerBus);

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    // A typical quickly-detected error (the EX/MEM ALU bus).
    group.bench_function("generate_single_error", |b| {
        b.iter(|| {
            let mut tg = TestGenerator::new(&dlx, TgConfig::default());
            black_box(tg.generate(&errors[0]))
        })
    });
    group.bench_function("generate_batch_of_8", |b| {
        b.iter(|| {
            let mut tg = TestGenerator::new(&dlx, TgConfig::default());
            for e in errors.iter().take(8) {
                black_box(tg.generate(e));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_generate);
criterion_main!(benches);
