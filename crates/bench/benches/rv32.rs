//! Benches for the rv32 backends: end-to-end generation over a batch of
//! the five-stage error population, and controller unrolling on the
//! seven-stage build — the pipeframe-scaling cost the deep variant
//! exists to stress. Plain std harness; run with `cargo bench --bench
//! rv32`.

use hltg_bench::harness::{bench, write_json_report};
use hltg_core::tg::{TestGenerator, TgConfig};
use hltg_core::unroll::Unrolled;
use hltg_errors::{enumerate_stage_errors, EnumPolicy};
use hltg_netlist::ProcessorModel;
use hltg_rv32::Rv32Model;
use std::hint::black_box;

fn main() {
    let model = Rv32Model::five_stage();
    let stages = model.error_stages();
    let errors = enumerate_stage_errors(model.design(), &stages, EnumPolicy::RepresentativePerBus);

    let mut results = Vec::new();
    results.push(bench("rv32_generate_batch_of_8", || {
        let mut tg = TestGenerator::new(&model, TgConfig::default());
        for e in errors.iter().take(8) {
            black_box(tg.generate(e));
        }
    }));

    // Twelve frames covers the seven-stage fill plus the squash window —
    // the generator's working depth on this pipe.
    let deep = Rv32Model::seven_stage();
    results.push(bench("rv32_7stage_unroll", || {
        let mut u = Unrolled::new(&deep.design().ctl, 12);
        u.propagate();
        black_box(u)
    }));
    write_json_report("rv32", &results);
}
