//! Bench for the simulation substrate: cycle throughput of the DLX
//! machine and of the dual good/bad pair that confirms detections.
//! Plain std harness; run with `cargo bench --bench sim`.

use hltg_bench::harness::{bench_throughput, write_json_report};
use hltg_dlx::DlxDesign;
use hltg_isa::asm::assemble;
use hltg_sim::{DualSim, Injection, Machine, Polarity};
use std::hint::black_box;

fn main() {
    let dlx = DlxDesign::build();
    let program = assemble(
        0,
        "
        addi r1, r0, 3
    top: add r2, r2, r1
        subi r1, r1, 1
        bnez r1, top
        sw  r2, 0x100(r0)
        ",
    )
    .unwrap();
    let words = program.encode();

    let mut results = Vec::new();
    results.push(bench_throughput("dlx_machine_256_cycles", 256, || {
        let mut m = Machine::new(&dlx.design).unwrap();
        for (i, &w) in words.iter().enumerate() {
            m.preload_mem(dlx.dp.imem, i as u64, u64::from(w));
        }
        for _ in 0..256 {
            black_box(m.step());
        }
    }));

    let inj = Injection {
        net: dlx.dp.alu_out,
        bit: 3,
        polarity: Polarity::StuckAt1,
    };
    results.push(bench_throughput("dual_sim_256_cycles", 256, || {
        let mut dual = DualSim::new(&dlx.design, inj).unwrap();
        dual.with_both(|m| {
            for (i, &w) in words.iter().enumerate() {
                m.preload_mem(dlx.dp.imem, i as u64, u64::from(w));
            }
        });
        black_box(dual.run(256))
    }));
    write_json_report("sim", &results);
}
