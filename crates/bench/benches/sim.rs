//! Criterion bench for the simulation substrate: cycle throughput of the
//! DLX machine and of the dual good/bad pair that confirms detections.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hltg_dlx::DlxDesign;
use hltg_isa::asm::assemble;
use hltg_sim::{DualSim, Injection, Machine, Polarity};
use std::hint::black_box;

fn bench_sim(c: &mut Criterion) {
    let dlx = DlxDesign::build();
    let program = assemble(
        0,
        "
        addi r1, r0, 3
    top: add r2, r2, r1
        subi r1, r1, 1
        bnez r1, top
        sw  r2, 0x100(r0)
        ",
    )
    .unwrap();
    let words = program.encode();

    let mut group = c.benchmark_group("sim");
    group.throughput(Throughput::Elements(256));
    group.bench_function("dlx_machine_256_cycles", |b| {
        b.iter(|| {
            let mut m = Machine::new(&dlx.design).unwrap();
            for (i, &w) in words.iter().enumerate() {
                m.preload_mem(dlx.dp.imem, i as u64, u64::from(w));
            }
            for _ in 0..256 {
                black_box(m.step());
            }
        })
    });
    group.bench_function("dual_sim_256_cycles", |b| {
        let inj = Injection {
            net: dlx.dp.alu_out,
            bit: 3,
            polarity: Polarity::StuckAt1,
        };
        b.iter(|| {
            let mut dual = DualSim::new(&dlx.design, inj).unwrap();
            dual.with_both(|m| {
                for (i, &w) in words.iter().enumerate() {
                    m.preload_mem(dlx.dp.imem, i as u64, u64::from(w));
                }
            });
            black_box(dual.run(256))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
