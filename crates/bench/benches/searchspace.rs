//! Criterion bench for the §IV comparison: pipeframe-organized CTRLJUST vs
//! the conventional timeframe-organized justification on the same
//! controller objectives.

use criterion::{criterion_group, criterion_main, Criterion};
use hltg_core::ctrljust::{self, CtrlJustConfig, Objective};
use hltg_core::timeframe::justify_timeframe;
use hltg_core::unroll::Unrolled;
use hltg_dlx::DlxDesign;
use std::hint::black_box;

fn bench_organizations(c: &mut Criterion) {
    let dlx = DlxDesign::build();
    let objs = [Objective {
        frame: 5,
        net: dlx.ctl.c_mem_we,
        value: true,
    }];

    let mut group = c.benchmark_group("fig2_searchspace");
    group.bench_function("pipeframe_ctrljust_store", |b| {
        b.iter(|| {
            let mut u = Unrolled::new(&dlx.design.ctl, 8);
            black_box(ctrljust::justify(&mut u, &objs, &[], CtrlJustConfig::default()).unwrap())
        })
    });
    group.bench_function("timeframe_baseline_store", |b| {
        b.iter(|| black_box(justify_timeframe(&dlx.design.ctl, &objs, 5000)))
    });
    group.finish();
}

criterion_group!(benches, bench_organizations);
criterion_main!(benches);
