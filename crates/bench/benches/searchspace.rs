//! Bench for the §IV comparison: pipeframe-organized CTRLJUST vs the
//! conventional timeframe-organized justification on the same controller
//! objectives. Plain std harness; run with `cargo bench --bench searchspace`.

use hltg_bench::harness::{bench, write_json_report};
use hltg_core::ctrljust::{self, CtrlJustConfig, Objective};
use hltg_core::timeframe::justify_timeframe;
use hltg_core::unroll::Unrolled;
use hltg_dlx::DlxDesign;
use std::hint::black_box;

fn main() {
    let dlx = DlxDesign::build();
    let objs = [Objective {
        frame: 5,
        net: dlx.ctl.c_mem_we,
        value: true,
    }];

    let mut results = Vec::new();
    results.push(bench("pipeframe_ctrljust_store", || {
        let mut u = Unrolled::new(&dlx.design.ctl, 8);
        black_box(ctrljust::justify(&mut u, &objs, &[], CtrlJustConfig::default()).unwrap())
    }));
    results.push(bench("timeframe_baseline_store", || {
        black_box(justify_timeframe(&dlx.design.ctl, &objs, 5000))
    }));
    write_json_report("searchspace", &results);
}
