//! Benches for the untestability prover (DESIGN.md §6h). Plain std
//! harness; run with `cargo bench --bench prover`.
//!
//! Three costs matter in a campaign: certifying a provable error (paid
//! once per certified abort), *failing* to certify a testable error (the
//! overhead `--prove-untestable` adds to every genuine abort), and
//! re-checking a certificate (what a consumer of the proof pays to trust
//! it). The provable/testable specimens are discovered by scanning the
//! DLX `AllBits` error-stage population with the prover itself, so the
//! set keeps working if the enumeration order moves.

use hltg_bench::harness::{bench, write_json_report};
use hltg_core::instrument::Counters;
use hltg_core::{prove_untestable, ProveConfig};
use hltg_dlx::DlxModel;
use hltg_errors::{enumerate_stage_errors, EnumPolicy};
use hltg_netlist::ProcessorModel;
use std::hint::black_box;

fn main() {
    let model = DlxModel::new();
    let design = model.design();
    let stages = model.error_stages();
    let errors = enumerate_stage_errors(design, &stages, EnumPolicy::AllBits);
    let cfg = ProveConfig::default();
    let probe = Counters::default();

    // Setup (untimed): one provable and one unprovable specimen.
    let provable = errors
        .iter()
        .find(|e| prove_untestable(design, e, cfg, &probe).is_some())
        .expect("the DLX error stages contain a provably untestable bit");
    let testable = errors
        .iter()
        .find(|e| prove_untestable(design, e, cfg, &probe).is_none())
        .expect("the DLX error stages contain a testable bit");
    let proof = prove_untestable(design, provable, cfg, &probe).expect("specimen proves");

    let mut results = Vec::new();
    results.push(bench("prove_certified_error", || {
        black_box(prove_untestable(design, black_box(provable), cfg, &probe))
    }));
    results.push(bench("prove_miss_testable_error", || {
        black_box(prove_untestable(design, black_box(testable), cfg, &probe))
    }));
    results.push(bench("check_certificate", || {
        black_box(proof.check(design, black_box(provable)))
    }));
    write_json_report("prover", &results);
}
