//! Renders coverage analytics from a campaign metrics timeline (the
//! JSONL written by `table1 --metrics-out` / `ext_error_models
//! --metrics-out`; see DESIGN.md §Observability v2): the per-stage ×
//! per-error-class detection matrix, the detection-latency histogram,
//! per-test efficiency (errors covered per kept test) and the coverage
//! timeline.
//!
//! Usage:
//!
//! ```text
//! campaign_report <metrics.jsonl>            # markdown report
//! campaign_report --tsv <metrics.jsonl>      # detection matrix as TSV
//! campaign_report --check <metrics.jsonl>    # validate, exit non-zero on error
//! ```
//!
//! `--check` validates instead of rendering: every line must parse and
//! carry the schema fields for its event kind, the summary's detection
//! matrix must equal one recomputed from the `rec` lines, the summary
//! totals must equal the per-record tallies, and the TSV rendering must
//! round-trip (parse back to the same matrix). Exits non-zero on the
//! first violation — the metrics smoke step of `scripts/check.sh`.

use hltg_core::jsonv::{self, Value};
use std::collections::BTreeMap;

const PHASES: [&str; 3] = ["dptrace", "ctrljust", "dprelax"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let tsv = args.iter().any(|a| a == "--tsv");
    let path = args.iter().find(|a| !a.starts_with("--")).cloned();
    let Some(path) = path else {
        eprintln!("usage: campaign_report [--check|--tsv] <metrics.jsonl>");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let timeline = match parse_metrics(&text) {
        Ok(t) => t,
        Err(msg) => {
            eprintln!("{path}: {msg}");
            std::process::exit(1);
        }
    };
    if check {
        if let Err(msg) = cross_check(&timeline) {
            eprintln!("{path}: {msg}");
            std::process::exit(1);
        }
        println!(
            "ok: {} metric records, {} snapshots, {} matrix cells validated",
            timeline.recs.len(),
            timeline.snaps.len(),
            matrix_of(&timeline.summary).len()
        );
        return;
    }
    if tsv {
        print!("{}", render_tsv(&timeline));
        return;
    }
    render_markdown(&timeline);
}

struct Timeline {
    meta: Value,
    recs: Vec<Value>,
    snaps: Vec<Value>,
    summary: Value,
}

/// Parses and schema-checks every line; returns the structured timeline.
fn parse_metrics(text: &str) -> Result<Timeline, String> {
    let mut meta = None;
    let mut recs = Vec::new();
    let mut snaps = Vec::new();
    let mut summary = None;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = jsonv::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let kind = v
            .get_str("ev")
            .ok_or_else(|| format!("line {}: missing \"ev\"", lineno + 1))?
            .to_string();
        let req: &[&str] = match kind.as_str() {
            "meta" => &["version", "stream", "design", "errors", "sample_every"],
            "rec" => &[
                "error",
                "stage",
                "site",
                "class",
                "outcome",
                "reason",
                "redundant",
                "by_simulation",
                "round",
                "detected_cycle",
                "test_length",
            ],
            "snap" => &[
                "at",
                "generated",
                "screened",
                "detected",
                "aborted",
                "proven_untestable",
                "retried",
                "redundant",
                "coverage_pct",
                "decisions",
                "backtracks",
                "cost",
            ],
            "summary" => &[
                "errors",
                "generated",
                "screened",
                "detected",
                "aborted",
                "proven_untestable",
                "retried",
                "coverage_pct",
                "test_set_size",
                "matrix",
                "latency_hist",
            ],
            other => return Err(format!("line {}: unknown event kind {other:?}", lineno + 1)),
        };
        for key in req {
            if v.get(key).is_none() {
                return Err(format!("line {}: {kind} event missing \"{key}\"", lineno + 1));
            }
        }
        match kind.as_str() {
            "meta" => meta = Some(v),
            "rec" => recs.push(v),
            "snap" => snaps.push(v),
            "summary" => summary = Some(v),
            _ => unreachable!(),
        }
    }
    let meta = meta.ok_or("no meta event")?;
    let summary = summary.ok_or("no summary event")?;
    if meta.get_str("stream") != Some("metrics") {
        return Err("meta event is not a metrics stream".into());
    }
    Ok(Timeline {
        meta,
        recs,
        snaps,
        summary,
    })
}

/// The summary's detection matrix as `(stage, class) -> (errors, detected)`.
fn matrix_of(summary: &Value) -> BTreeMap<(u64, String), (u64, u64)> {
    let mut out = BTreeMap::new();
    if let Some(cells) = summary.get("matrix").and_then(Value::as_arr) {
        for c in cells {
            let (Some(stage), Some(class), Some(errors), Some(detected)) = (
                c.get_u64("stage"),
                c.get_str("class"),
                c.get_u64("errors"),
                c.get_u64("detected"),
            ) else {
                continue;
            };
            out.insert((stage, class.to_string()), (errors, detected));
        }
    }
    out
}

/// Recomputes the detection matrix from the `rec` lines.
fn matrix_from_recs(recs: &[Value]) -> BTreeMap<(u64, String), (u64, u64)> {
    let mut out: BTreeMap<(u64, String), (u64, u64)> = BTreeMap::new();
    for r in recs {
        let (Some(stage), Some(class)) = (r.get_u64("stage"), r.get_str("class")) else {
            continue;
        };
        let cell = out.entry((stage, class.to_string())).or_insert((0, 0));
        cell.0 += 1;
        cell.1 += u64::from(r.get_str("outcome") == Some("detected"));
    }
    out
}

/// The independent invariants one timeline must satisfy: the summary
/// aggregates equal tallies recomputed from the `rec` lines, the
/// snapshot clock is sane, and the TSV rendering round-trips.
fn cross_check(t: &Timeline) -> Result<(), String> {
    let errors = t.recs.len() as u64;
    if t.meta.get_u64("errors") != Some(errors) {
        return Err(format!(
            "meta claims {:?} errors, {} rec lines present",
            t.meta.get_u64("errors"),
            errors
        ));
    }
    let tally = |f: &dyn Fn(&Value) -> bool| t.recs.iter().filter(|r| f(r)).count() as u64;
    let detected = tally(&|r| r.get_str("outcome") == Some("detected"));
    let proven = tally(&|r| r.get_str("outcome") == Some("proven_untestable"));
    let generated = tally(&|r| r.get("by_simulation").and_then(Value::as_bool) == Some(false));
    let retried = tally(&|r| r.get_u64("round").unwrap_or(0) > 0);
    for (key, want) in [
        ("errors", errors),
        ("detected", detected),
        // Detected, aborted and proven-untestable partition the records.
        ("aborted", errors - detected - proven),
        ("proven_untestable", proven),
        ("generated", generated),
        ("screened", errors - generated),
        ("retried", retried),
    ] {
        if t.summary.get_u64(key) != Some(want) {
            return Err(format!(
                "summary \"{key}\" is {:?}, rec lines tally {want}",
                t.summary.get_u64(key)
            ));
        }
    }
    let claimed = matrix_of(&t.summary);
    let recomputed = matrix_from_recs(&t.recs);
    if claimed != recomputed {
        return Err(format!(
            "summary matrix disagrees with the rec lines: {claimed:?} vs {recomputed:?}"
        ));
    }
    // Every generated detection contributes one latency sample.
    let generated_detections = tally(&|r| {
        r.get_str("outcome") == Some("detected")
            && r.get("by_simulation").and_then(Value::as_bool) == Some(false)
    });
    let hist_total: u64 = t
        .summary
        .get("latency_hist")
        .and_then(Value::as_arr)
        .map(|buckets| {
            buckets
                .iter()
                .filter_map(Value::as_arr)
                .filter_map(|p| p.get(1).and_then(Value::as_u64))
                .sum()
        })
        .unwrap_or(0);
    if hist_total != generated_detections {
        return Err(format!(
            "latency histogram holds {hist_total} samples, \
             {generated_detections} generated detections recorded"
        ));
    }
    // Distinct covering tests among generated detections.
    let mut fps: Vec<&str> = t
        .recs
        .iter()
        .filter(|r| r.get("by_simulation").and_then(Value::as_bool) == Some(false))
        .filter_map(|r| r.get_str("test_fp"))
        .collect();
    fps.sort_unstable();
    fps.dedup();
    if t.summary.get_u64("test_set_size") != Some(fps.len() as u64) {
        return Err(format!(
            "summary test_set_size is {:?}, {} distinct test fingerprints recorded",
            t.summary.get_u64("test_set_size"),
            fps.len()
        ));
    }
    // The snapshot clock advances strictly and ends on the last record.
    let mut prev = 0;
    for s in &t.snaps {
        let at = s.get_u64("at").unwrap_or(0);
        if at <= prev {
            return Err(format!("snapshot clock not strictly increasing at {at}"));
        }
        prev = at;
    }
    if errors > 0 && prev != errors {
        return Err(format!(
            "last snapshot at {prev}, {errors} records accounted"
        ));
    }
    // The TSV rendering carries the same matrix back through a parse.
    let rendered = render_tsv(t);
    let mut round_trip = BTreeMap::new();
    for line in rendered.lines().skip(1) {
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() != 4 || cols[0] == "total" {
            continue;
        }
        let (Ok(stage), Ok(errors), Ok(detected)) = (
            cols[0].parse::<u64>(),
            cols[2].parse::<u64>(),
            cols[3].parse::<u64>(),
        ) else {
            return Err(format!("TSV row failed to parse: {line:?}"));
        };
        round_trip.insert((stage, cols[1].to_string()), (errors, detected));
    }
    if round_trip != recomputed {
        return Err("TSV rendering does not round-trip the matrix".into());
    }
    Ok(())
}

/// The detection matrix as TSV: `stage class errors detected`, one cell
/// per row, plus a trailing `total` row.
fn render_tsv(t: &Timeline) -> String {
    let matrix = matrix_of(&t.summary);
    let mut out = String::from("stage\tclass\terrors\tdetected\n");
    let (mut total_e, mut total_d) = (0, 0);
    for ((stage, class), (errors, detected)) in &matrix {
        out.push_str(&format!("{stage}\t{class}\t{errors}\t{detected}\n"));
        total_e += errors;
        total_d += detected;
    }
    out.push_str(&format!("total\t*\t{total_e}\t{total_d}\n"));
    out
}

/// Lower-bound quantile over sparse `[lower_bound, count]` histogram
/// buckets, as emitted by `LogHistogram::to_json`.
fn hist_quantile(buckets: &[Value], q: f64) -> u64 {
    let total: u64 = buckets
        .iter()
        .filter_map(Value::as_arr)
        .filter_map(|p| p.get(1).and_then(Value::as_u64))
        .sum();
    if total == 0 {
        return 0;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for b in buckets {
        let Some(pair) = b.as_arr() else { continue };
        let (Some(lo), Some(n)) = (
            pair.first().and_then(Value::as_u64),
            pair.get(1).and_then(Value::as_u64),
        ) else {
            continue;
        };
        seen += n;
        if seen >= rank {
            return lo;
        }
    }
    0
}

fn render_markdown(t: &Timeline) {
    let design = t.meta.get_str("design").unwrap_or("?");
    let errors = t.summary.get_u64("errors").unwrap_or(0);
    let detected = t.summary.get_u64("detected").unwrap_or(0);
    let generated = t.summary.get_u64("generated").unwrap_or(0);
    let screened = t.summary.get_u64("screened").unwrap_or(0);
    let retried = t.summary.get_u64("retried").unwrap_or(0);
    let proven = t.summary.get_u64("proven_untestable").unwrap_or(0);
    println!("# Campaign metrics: {design}");
    println!();
    println!(
        "{errors} errors — {detected} detected ({:.1}%), \
         {generated} generated, {screened} screened by simulation, \
         {retried} recovered by retry, {} distinct tests kept.",
        t.summary.get_f64("coverage_pct").unwrap_or(0.0),
        t.summary.get_u64("test_set_size").unwrap_or(0),
    );
    if proven > 0 {
        println!();
        println!(
            "{proven} errors proven untestable by the bounded implication \
             prover (certified: no activating/propagating sequence exists \
             within the proof window)."
        );
    }

    // --- Detection matrix -----------------------------------------------
    println!();
    println!("## Detection matrix (stage × error class)");
    println!();
    let matrix = matrix_of(&t.summary);
    let stages: Vec<u64> = {
        let mut s: Vec<u64> = matrix.keys().map(|(stage, _)| *stage).collect();
        s.sort_unstable();
        s.dedup();
        s
    };
    println!("| stage | sa0 | sa1 | total | coverage |");
    println!("|---|---|---|---|---|");
    let cell = |stage: u64, class: &str| -> (u64, u64) {
        matrix
            .get(&(stage, class.to_string()))
            .copied()
            .unwrap_or((0, 0))
    };
    for stage in &stages {
        let (e0, d0) = cell(*stage, "sa0");
        let (e1, d1) = cell(*stage, "sa1");
        let (e, d) = (e0 + e1, d0 + d1);
        println!(
            "| {stage} | {d0}/{e0} | {d1}/{e1} | {d}/{e} | {:.1}% |",
            100.0 * d as f64 / e.max(1) as f64
        );
    }
    println!(
        "| **all** | — | — | {detected}/{errors} | {:.1}% |",
        100.0 * detected as f64 / errors.max(1) as f64
    );

    // --- Detection latency ----------------------------------------------
    println!();
    println!("## Detection latency (cycles to first divergence)");
    println!();
    match t.summary.get("latency_hist").and_then(Value::as_arr) {
        Some(buckets) if !buckets.is_empty() => {
            println!(
                "p50 ≥ {}, p90 ≥ {}, p99 ≥ {} cycles (log2 lower bounds).",
                hist_quantile(buckets, 0.50),
                hist_quantile(buckets, 0.90),
                hist_quantile(buckets, 0.99)
            );
            println!();
            let max: u64 = buckets
                .iter()
                .filter_map(Value::as_arr)
                .filter_map(|p| p.get(1).and_then(Value::as_u64))
                .max()
                .unwrap_or(1);
            println!("| cycles ≥ | detections | |");
            println!("|---|---|---|");
            for b in buckets {
                let Some(pair) = b.as_arr() else { continue };
                let (Some(lo), Some(n)) = (
                    pair.first().and_then(Value::as_u64),
                    pair.get(1).and_then(Value::as_u64),
                ) else {
                    continue;
                };
                let bar = ((n * 24) / max.max(1)) as usize;
                println!("| {lo} | {n} | {} |", "#".repeat(bar.max(1)));
            }
        }
        _ => println!("(no generated detections)"),
    }

    // --- Per-test efficiency --------------------------------------------
    println!();
    println!("## Per-test efficiency (errors covered per kept test)");
    println!();
    let mut by_test: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
    for r in &t.recs {
        let Some(fp) = r.get_str("test_fp") else { continue };
        let entry = by_test.entry(fp).or_insert((0, 0, 0));
        entry.0 += 1;
        if r.get("by_simulation").and_then(Value::as_bool) == Some(true) {
            entry.1 += 1;
        }
        entry.2 = entry.2.max(r.get_u64("test_length").unwrap_or(0));
    }
    let mut ranked: Vec<(&str, (u64, u64, u64))> =
        by_test.iter().map(|(k, v)| (*k, *v)).collect();
    ranked.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then(a.0.cmp(b.0)));
    if ranked.is_empty() {
        println!("(no detections)");
    } else {
        println!("| test | errors covered | by simulation | length |");
        println!("|---|---|---|---|");
        for (fp, (covered, screened, length)) in ranked.iter().take(10) {
            println!("| `{fp}` | {covered} | {screened} | {length} |");
        }
        if ranked.len() > 10 {
            println!();
            println!("... and {} more tests.", ranked.len() - 10);
        }
    }

    // --- Coverage timeline ----------------------------------------------
    println!();
    println!("## Coverage timeline");
    println!();
    println!("| at | detected | screened | coverage | decisions | backtracks | cost ({}) |",
        PHASES.join("/"));
    println!("|---|---|---|---|---|---|---|");
    for s in &t.snaps {
        let cost = s.get("cost");
        let costs: Vec<String> = PHASES
            .iter()
            .map(|p| {
                cost.and_then(|c| c.get_u64(p))
                    .map_or_else(|| "?".to_string(), |v| v.to_string())
            })
            .collect();
        println!(
            "| {} | {} | {} | {:.1}% | {} | {} | {} |",
            s.get_u64("at").unwrap_or(0),
            s.get_u64("detected").unwrap_or(0),
            s.get_u64("screened").unwrap_or(0),
            s.get_f64("coverage_pct").unwrap_or(0.0),
            s.get_u64("decisions").unwrap_or(0),
            s.get_u64("backtracks").unwrap_or(0),
            costs.join("/")
        );
    }
}
