//! Perf-regression gate: compares fresh `BENCH_<set>.json` reports (as
//! written by the `bench` runner at the repo root) against checked-in
//! baselines and exits non-zero when any benchmark regressed past its
//! threshold — the perf gate of `scripts/check.sh`.
//!
//! Usage:
//!
//! ```text
//! bench_diff [--baselines DIR] [--fresh DIR] [--threshold PCT] [--sets a,b,...]
//! bench_diff --self-test
//! ```
//!
//! A benchmark regresses when its fresh `median_ns` exceeds the baseline
//! by more than `--threshold` percent (default 50 — CI machines are
//! noisy; the gate is for step-change regressions, not single-digit
//! drift), or when a baseline benchmark disappears from the fresh
//! report. New benchmarks absent from the baseline pass with a note
//! (refresh the baseline to start tracking them). Missing fresh report
//! files fail: the gate must never silently skip a whole set.
//!
//! `--self-test` proves the gate can fail: it synthesizes a 2× slowdown
//! of every baseline in memory and asserts the comparison rejects it
//! while an identical copy passes. Runs against the real baselines, so
//! it also validates their schema.

use hltg_core::jsonv::{self, Value};
use std::path::{Path, PathBuf};

/// The benchmark sets the runner emits; one `BENCH_<set>.json` each.
const SETS: [&str; 8] = [
    "cache",
    "campaign",
    "dprelax",
    "searchspace",
    "serve",
    "sim",
    "prover",
    "rv32",
];

#[derive(Debug, Clone, PartialEq)]
struct Bench {
    name: String,
    median_ns: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value_of = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let baselines = PathBuf::from(
        value_of("--baselines").unwrap_or_else(|| "crates/bench/baselines".to_string()),
    );
    let fresh = PathBuf::from(value_of("--fresh").unwrap_or_else(|| ".".to_string()));
    let threshold_pct: f64 = value_of("--threshold")
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--threshold: cannot parse {v:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(50.0);
    let sets: Vec<String> = value_of("--sets")
        .map(|v| v.split(',').map(str::to_string).collect())
        .unwrap_or_else(|| SETS.iter().map(|s| s.to_string()).collect());

    if args.iter().any(|a| a == "--self-test") {
        self_test(&baselines, &sets, threshold_pct);
        return;
    }

    let mut regressions = 0usize;
    let mut compared = 0usize;
    for set in &sets {
        let base = match load_set(&baselines, set) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("baseline {set}: {e}");
                std::process::exit(1);
            }
        };
        let new = match load_set(&fresh, set) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("fresh {set}: {e}");
                std::process::exit(1);
            }
        };
        let (r, c) = diff_set(set, &base, &new, threshold_pct);
        regressions += r;
        compared += c;
    }
    if regressions > 0 {
        eprintln!(
            "FAIL: {regressions} of {compared} benchmarks regressed past {threshold_pct:.0}%"
        );
        std::process::exit(1);
    }
    println!(
        "ok: {compared} benchmarks within {threshold_pct:.0}% of baseline ({} sets)",
        sets.len()
    );
}

/// Parses one `BENCH_<set>.json` into its benchmark list.
fn load_set(dir: &Path, set: &str) -> Result<Vec<Bench>, String> {
    let path = dir.join(format!("BENCH_{set}.json"));
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let v = jsonv::parse(text.trim()).map_err(|e| format!("{}: {e}", path.display()))?;
    if v.get_str("bench_set") != Some(set) {
        return Err(format!(
            "{}: bench_set is {:?}, expected {set:?}",
            path.display(),
            v.get_str("bench_set")
        ));
    }
    let benches = v
        .get("benches")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("{}: missing \"benches\" array", path.display()))?;
    let mut out = Vec::new();
    for b in benches {
        let name = b
            .get_str("name")
            .ok_or_else(|| format!("{}: bench missing \"name\"", path.display()))?;
        let median_ns = b
            .get_f64("median_ns")
            .ok_or_else(|| format!("{}: {name}: missing \"median_ns\"", path.display()))?;
        out.push(Bench {
            name: name.to_string(),
            median_ns,
        });
    }
    if out.is_empty() {
        return Err(format!("{}: empty benchmark list", path.display()));
    }
    Ok(out)
}

/// Compares one set; prints per-benchmark verdicts and returns
/// `(regressions, compared)`.
fn diff_set(set: &str, base: &[Bench], new: &[Bench], threshold_pct: f64) -> (usize, usize) {
    let mut regressions = 0;
    let mut compared = 0;
    for b in base {
        let Some(n) = new.iter().find(|n| n.name == b.name) else {
            eprintln!("  {set}/{}: REGRESSED (missing from fresh report)", b.name);
            regressions += 1;
            continue;
        };
        compared += 1;
        let ratio = if b.median_ns > 0.0 {
            n.median_ns / b.median_ns
        } else {
            1.0
        };
        let delta_pct = 100.0 * (ratio - 1.0);
        if delta_pct > threshold_pct {
            eprintln!(
                "  {set}/{}: REGRESSED median {:.0}ns -> {:.0}ns ({delta_pct:+.1}%)",
                b.name, b.median_ns, n.median_ns
            );
            regressions += 1;
        } else {
            println!(
                "  {set}/{}: ok median {:.0}ns -> {:.0}ns ({delta_pct:+.1}%)",
                b.name, b.median_ns, n.median_ns
            );
        }
    }
    for n in new {
        if !base.iter().any(|b| b.name == n.name) {
            println!(
                "  {set}/{}: new benchmark (no baseline; refresh to track)",
                n.name
            );
        }
    }
    (regressions, compared)
}

/// Proves the gate trips: every baseline passes against itself and fails
/// against a synthetic 2× slowdown of itself.
fn self_test(baselines: &Path, sets: &[String], threshold_pct: f64) {
    for set in sets {
        let base = match load_set(baselines, set) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("self-test baseline {set}: {e}");
                std::process::exit(1);
            }
        };
        let (identical, n) = diff_set(set, &base, &base, threshold_pct);
        if identical != 0 || n != base.len() {
            eprintln!("self-test FAIL: identical {set} report flagged {identical} regressions");
            std::process::exit(1);
        }
        let slowed: Vec<Bench> = base
            .iter()
            .map(|b| Bench {
                name: b.name.clone(),
                median_ns: b.median_ns * 2.0,
            })
            .collect();
        let (tripped, _) = diff_set(set, &base, &slowed, threshold_pct);
        if tripped != base.len() {
            eprintln!(
                "self-test FAIL: 2x slowdown of {set} tripped only {tripped}/{} benchmarks",
                base.len()
            );
            std::process::exit(1);
        }
    }
    println!(
        "ok: self-test passed for {} sets (identical reports pass, 2x slowdowns fail)",
        sets.len()
    );
}
