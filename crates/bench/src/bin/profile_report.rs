//! Renders a text profile from a structured campaign trace (the JSONL
//! written by `table1 --trace-out` / `ext_error_models --trace-out`):
//! per-phase time breakdown, the top-10 slowest errors, abort
//! post-mortems (which phase exhausted the budget), and the
//! CTRLJUST backtrack-depth distribution.
//!
//! Usage:
//!
//! ```text
//! profile_report <trace.jsonl>
//! profile_report --check <trace.jsonl> [--report <report.json>]
//! ```
//!
//! `--check` validates instead of rendering: every JSONL line must parse
//! and carry the schema fields for its event kind, and the optional
//! campaign report must parse with its aggregate fields present. Exits
//! non-zero on the first violation — the offline smoke step of
//! `scripts/check.sh`.

use hltg_core::jsonv::{self, Value};

const PHASES: [&str; 3] = ["dptrace", "ctrljust", "dprelax"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let report_path = args
        .iter()
        .position(|a| a == "--report")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let report_pos = args.iter().position(|a| a == "--report");
    let trace_path = args
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && Some(i.wrapping_sub(1)) != report_pos)
        .map(|(_, a)| a.clone())
        .next();
    let Some(trace_path) = trace_path else {
        eprintln!("usage: profile_report <trace.jsonl> | --check <trace.jsonl> [--report <report.json>]");
        std::process::exit(2);
    };

    let text = match std::fs::read_to_string(&trace_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {trace_path}: {e}");
            std::process::exit(1);
        }
    };
    let events = match parse_trace(&text) {
        Ok(evs) => evs,
        Err(msg) => {
            eprintln!("{trace_path}: {msg}");
            std::process::exit(1);
        }
    };

    if check {
        if let Some(path) = report_path {
            if let Err(msg) = check_report(&path) {
                eprintln!("{path}: {msg}");
                std::process::exit(1);
            }
        }
        let spans = events.iter().filter(|e| e.kind == "span").count();
        println!(
            "ok: {} trace events ({spans} spans) validated",
            events.len()
        );
        return;
    }

    render(&events);
}

struct Event {
    kind: String,
    value: Value,
}

/// Parses and schema-checks every line; returns the event list.
fn parse_trace(text: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    let mut kinds = (false, false, false); // meta, span-or-none, summary
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = jsonv::parse(line)
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let kind = v
            .get_str("ev")
            .ok_or_else(|| format!("line {}: missing \"ev\"", lineno + 1))?
            .to_string();
        let req: &[&str] = match kind.as_str() {
            "meta" => {
                kinds.0 = true;
                &["version", "errors", "spans"]
            }
            "span" => {
                kinds.1 = true;
                &[
                    "error",
                    "stage",
                    "site",
                    "outcome",
                    "reason",
                    "failed_phase",
                    "variants",
                    "refinements",
                    "decisions",
                    "backtracks",
                    "max_backtrack_depth",
                    "relax_iterations",
                    "perturbations",
                    "test_length",
                    "detected_cycle",
                    "phases",
                ]
            }
            "hist" => &["phase", "metric", "buckets"],
            "summary" => {
                kinds.2 = true;
                &["errors", "spans", "detected", "aborted", "screened"]
            }
            other => return Err(format!("line {}: unknown event kind {other:?}", lineno + 1)),
        };
        for key in req {
            if v.get(key).is_none() {
                return Err(format!(
                    "line {}: {kind} event missing \"{key}\"",
                    lineno + 1
                ));
            }
        }
        events.push(Event { kind, value: v });
    }
    if !kinds.0 {
        return Err("no meta event".into());
    }
    if !kinds.2 {
        return Err("no summary event".into());
    }
    Ok(events)
}

/// Validates a `table1 --json` / `CampaignReport::to_json` document.
fn check_report(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let v = jsonv::parse(text.trim()).map_err(|e| e.to_string())?;
    for key in [
        "errors",
        "detected",
        "aborted",
        "coverage_pct",
        "counters",
        "phases",
    ] {
        if v.get(key).is_none() {
            return Err(format!("campaign report missing \"{key}\""));
        }
    }
    println!("ok: campaign report validated");
    Ok(())
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.1}µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.1}ms", ns / 1e6)
    } else {
        format!("{:.2}s", ns / 1e9)
    }
}

/// Lower-bound quantile over sparse `[lower_bound, count]` histogram
/// buckets (as emitted in `hist` events).
fn hist_quantile(buckets: &[Value], q: f64) -> u64 {
    let total: u64 = buckets
        .iter()
        .filter_map(|b| b.as_arr())
        .filter_map(|p| p.get(1).and_then(Value::as_u64))
        .sum();
    if total == 0 {
        return 0;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for b in buckets {
        let Some(pair) = b.as_arr() else { continue };
        let (Some(lo), Some(n)) = (
            pair.first().and_then(Value::as_u64),
            pair.get(1).and_then(Value::as_u64),
        ) else {
            continue;
        };
        seen += n;
        if seen >= rank {
            return lo;
        }
    }
    0
}

fn render(events: &[Event]) {
    let spans: Vec<&Value> = events
        .iter()
        .filter(|e| e.kind == "span")
        .map(|e| &e.value)
        .collect();
    let summary = events
        .iter()
        .find(|e| e.kind == "summary")
        .map(|e| &e.value);
    let hist = |phase: &str, metric: &str| -> Option<&[Value]> {
        events
            .iter()
            .filter(|e| e.kind == "hist")
            .map(|e| &e.value)
            .find(|v| v.get_str("phase") == Some(phase) && v.get_str("metric") == Some(metric))
            .and_then(|v| v.get("buckets"))
            .and_then(Value::as_arr)
    };
    let timed = spans.iter().any(|s| s.get("ns").is_some());

    if let Some(s) = summary {
        println!(
            "campaign: {} errors, {} generated spans, {} detected, {} aborted, {} screened by simulation",
            s.get_u64("errors").unwrap_or(0),
            s.get_u64("spans").unwrap_or(0),
            s.get_u64("detected").unwrap_or(0),
            s.get_u64("aborted").unwrap_or(0),
            s.get_u64("screened").unwrap_or(0),
        );
    }

    // --- Per-phase breakdown --------------------------------------------
    println!("\nper-phase breakdown:");
    let metric = if timed { "ns" } else { "cost" };
    let phase_total = |p: &str| -> f64 {
        spans
            .iter()
            .filter_map(|s| s.get("phases").and_then(|v| v.get(p)))
            .filter_map(|ph| ph.get_f64(metric))
            .sum()
    };
    let grand: f64 = PHASES.iter().map(|&p| phase_total(p)).sum();
    for &p in &PHASES {
        let mut calls = 0u64;
        let mut total = 0f64;
        for s in &spans {
            if let Some(ph) = s.get("phases").and_then(|v| v.get(p)) {
                calls += ph.get_u64("calls").unwrap_or(0);
                total += ph.get_f64(metric).unwrap_or(0.0);
            }
        }
        let p50 = hist(p, metric).map_or(0, |b| hist_quantile(b, 0.50));
        let p99 = hist(p, metric).map_or(0, |b| hist_quantile(b, 0.99));
        let share = if grand > 0.0 { 100.0 * total / grand } else { 0.0 };
        if timed {
            println!(
                "  {p:<9} {calls:>6} calls  total {:>9}  ({share:>5.1}%)  p50 {:>9}  p99 {:>9}",
                fmt_ns(total),
                fmt_ns(p50 as f64),
                fmt_ns(p99 as f64)
            );
        } else {
            println!(
                "  {p:<9} {calls:>6} calls  total cost {total:>10.0}  ({share:>5.1}%)  p50 {p50:>7}  p99 {p99:>7}"
            );
        }
    }

    // --- Top-10 slowest errors ------------------------------------------
    let weight = |s: &Value| -> f64 {
        if timed {
            s.get_f64("ns").unwrap_or(0.0)
        } else {
            PHASES
                .iter()
                .filter_map(|&p| s.get("phases").and_then(|v| v.get(p)))
                .filter_map(|ph| ph.get_f64("cost"))
                .sum()
        }
    };
    let mut ranked: Vec<&&Value> = spans.iter().collect();
    ranked.sort_by(|a, b| {
        weight(b)
            .partial_cmp(&weight(a))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.get_u64("error").cmp(&b.get_u64("error")))
    });
    println!(
        "\ntop-10 slowest errors (by {}):",
        if timed { "wall-clock" } else { "total phase cost" }
    );
    println!(
        "  {:>5} {:<26} {:>9} {:>8} {:>6} {:>6} {:>6}  outcome",
        "error", "site", if timed { "time" } else { "cost" }, "variants", "dec", "btk", "iter"
    );
    for s in ranked.iter().take(10) {
        let w = weight(s);
        println!(
            "  {:>5} {:<26} {:>9} {:>8} {:>6} {:>6} {:>6}  {}",
            s.get_u64("error").unwrap_or(0),
            s.get_str("site").unwrap_or("?"),
            if timed {
                fmt_ns(w)
            } else {
                format!("{w:.0}")
            },
            s.get_u64("variants").unwrap_or(0),
            s.get_u64("decisions").unwrap_or(0),
            s.get_u64("backtracks").unwrap_or(0),
            s.get_u64("relax_iterations").unwrap_or(0),
            match s.get_str("outcome") {
                Some("detected") => "detected".to_string(),
                _ => format!("aborted:{}", s.get_str("reason").unwrap_or("?")),
            }
        );
    }

    // --- Abort post-mortems ---------------------------------------------
    let aborted: Vec<&&Value> = spans
        .iter()
        .filter(|s| s.get_str("outcome") == Some("aborted"))
        .collect();
    println!("\nabort post-mortems ({} aborted):", aborted.len());
    if aborted.is_empty() {
        println!("  (none)");
    }
    // "generate"/"campaign"/"unknown" are the isolation layers a panic or
    // step-budget abort can be attributed to (DESIGN.md §Resilience).
    for &phase in &[
        "dptrace", "ctrljust", "assembly", "dprelax", "generate", "campaign", "unknown",
    ] {
        let in_phase: Vec<&&&Value> = aborted
            .iter()
            .filter(|s| s.get_str("failed_phase") == Some(phase))
            .collect();
        if in_phase.is_empty() {
            continue;
        }
        println!("  budget exhausted in {phase}: {} errors", in_phase.len());
        for s in in_phase.iter().take(5) {
            println!(
                "    #{} {} — {} variants, {} backtracks, {} relax iterations",
                s.get_u64("error").unwrap_or(0),
                s.get_str("site").unwrap_or("?"),
                s.get_u64("variants").unwrap_or(0),
                s.get_u64("backtracks").unwrap_or(0),
                s.get_u64("relax_iterations").unwrap_or(0),
            );
        }
        if in_phase.len() > 5 {
            println!("    ... and {} more", in_phase.len() - 5);
        }
    }

    // --- Backtrack-depth distribution -----------------------------------
    println!("\nCTRLJUST backtrack-depth distribution (log2 buckets):");
    match hist("ctrljust", "backtrack_depth") {
        Some(buckets) if !buckets.is_empty() => {
            let max: u64 = buckets
                .iter()
                .filter_map(|b| b.as_arr())
                .filter_map(|p| p.get(1).and_then(Value::as_u64))
                .max()
                .unwrap_or(1);
            for b in buckets {
                let Some(pair) = b.as_arr() else { continue };
                let (Some(lo), Some(n)) = (
                    pair.first().and_then(Value::as_u64),
                    pair.get(1).and_then(Value::as_u64),
                ) else {
                    continue;
                };
                let bar = (n * 50 / max.max(1)) as usize;
                println!("  depth >= {lo:>5}: {n:>7} {}", "#".repeat(bar.max(1)));
            }
        }
        _ => println!("  (no backtracks recorded)"),
    }
}
