//! Reproduces **Figure 5**: the C- and O-propagation tables for the
//! two-input representatives of the ADD, AND and MUX module classes.
//!
//! Usage: `cargo run --release -p hltg-bench --bin fig5_tables`

fn main() {
    println!("{}", hltg_core::costate::format_fig5_tables());
    println!("legend:");
    println!("  C1 unknown / C2 open decisions remain / C3 settled / C4 controlled");
    println!("  O1 unknown / O2 not observable / O3 observable");
}
