//! **Extended error-model cross coverage** (paper §VI: "our test generation
//! algorithm can be used in conjunction with other error models proposed in
//! \[28\]"). Generates the compacted bus-SSL test set for the selected
//! design's error stages (EX/MEM/WB on the classic DLX), then grades it
//! against the other models of that family — bus order errors and module
//! substitution errors — by dual simulation.
//!
//! Usage: `cargo run --release -p hltg-bench --bin ext_error_models
//!         [--design NAME] [--json] [--trace-out PATH] [--progress]
//!         [--metrics-out PATH]
//!         [--resume PATH] [--no-sim-cache] [--no-packed-screen]
//!         [--prove-untestable] [--prove-frames K]`
//!
//! `--design NAME` selects the processor backend (default `dlx`) from
//! the process-wide [`hltg_netlist::registry`].
//!
//! `--json` emits a machine-readable object: the generating campaign's
//! [`hltg_core::CampaignReport`] (stats plus per-phase instrumentation
//! counters) under `"campaign"`, and the cross-coverage figures under
//! `"cross_coverage"`. `--trace-out PATH` writes the generating campaign's
//! structured JSONL trace (per-error spans, per-phase histograms) to
//! `PATH`; `--progress` prints a periodic stderr progress line.
//! `--metrics-out PATH` writes the generating campaign's deterministic
//! flight-recorder metrics JSONL (see DESIGN.md §Observability v2) for
//! `campaign_report`.
//! `--resume PATH` checkpoints the generating campaign to a JSONL file
//! and, on re-run, skips the errors the file already holds (see DESIGN.md
//! §Resilience) — the cross-coverage grading then reuses the restored
//! test set and reproduces the identical report.
//! `--prove-untestable` runs the untestability prover on aborted errors
//! (certified proofs reclassify them as `proven_untestable`);
//! `--prove-frames K` bounds the proof window (default 8 pipeframes).

use hltg_core::tg::Outcome;
use hltg_core::{Campaign, CampaignConfig, RunOptions};
use hltg_errors::{enumerate_bus_order_errors, enumerate_module_substitutions};
use hltg_sim::{ErrorModel, Machine, Schedule};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let progress = args.iter().any(|a| a == "--progress");
    let no_sim_cache = args.iter().any(|a| a == "--no-sim-cache");
    let no_packed_screen = args.iter().any(|a| a == "--no-packed-screen");
    let prove_untestable = args.iter().any(|a| a == "--prove-untestable");
    let prove_frames_pos = args.iter().position(|a| a == "--prove-frames");
    let prove_frames: Option<usize> = prove_frames_pos
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());
    if prove_frames_pos.is_some() && prove_frames.is_none() {
        eprintln!("--prove-frames requires a numeric argument");
        std::process::exit(2);
    }
    let trace_pos = args.iter().position(|a| a == "--trace-out");
    let trace_out: Option<String> = trace_pos.and_then(|i| args.get(i + 1)).cloned();
    if trace_pos.is_some() && trace_out.is_none() {
        eprintln!("--trace-out requires a path argument");
        std::process::exit(2);
    }
    let metrics_pos = args.iter().position(|a| a == "--metrics-out");
    let metrics_out: Option<String> = metrics_pos.and_then(|i| args.get(i + 1)).cloned();
    if metrics_pos.is_some() && metrics_out.is_none() {
        eprintln!("--metrics-out requires a path argument");
        std::process::exit(2);
    }
    let resume_pos = args.iter().position(|a| a == "--resume");
    let resume: Option<String> = resume_pos.and_then(|i| args.get(i + 1)).cloned();
    if resume_pos.is_some() && resume.is_none() {
        eprintln!("--resume requires a path argument");
        std::process::exit(2);
    }
    let design_pos = args.iter().position(|a| a == "--design");
    let design_name = design_pos
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            if design_pos.is_some() {
                eprintln!("--design requires a name argument");
                std::process::exit(2);
            }
            "dlx".to_string()
        });
    hltg_dlx::register_backends();
    hltg_rv32::register_backends();
    let model = hltg_netlist::registry::build_model(&design_name).unwrap_or_else(|| {
        eprintln!(
            "--design {design_name}: unknown backend (registered: {})",
            hltg_netlist::registry::backend_names().join(", ")
        );
        std::process::exit(2);
    });
    let stages = model.error_stages();

    eprintln!("generating the compacted bus-SSL test set on {}...", model.name());
    let defaults = CampaignConfig::default();
    let run = Campaign::run(
        model.as_ref(),
        &CampaignConfig {
            stages: stages.clone(),
            error_simulation: true,
            sim_cache: !no_sim_cache,
            packed_screen: !no_packed_screen,
            checkpoint: resume.map(std::path::PathBuf::from),
            prove_untestable,
            prove_frames: prove_frames.unwrap_or(defaults.prove_frames),
            ..defaults
        },
        RunOptions {
            trace: trace_out.is_some(),
            progress,
            metrics: metrics_out.is_some().then_some(8),
            ..RunOptions::default()
        },
    );
    let (campaign, report) = (run.campaign, run.report);
    if let (Some(path), Some(trace)) = (&trace_out, &run.trace) {
        if let Err(e) = std::fs::write(path, trace.to_jsonl()) {
            eprintln!("failed to write trace to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {} spans to {path}", trace.spans.len());
    }
    if let (Some(path), Some(metrics)) = (&metrics_out, &run.metrics) {
        if let Err(e) = std::fs::write(path, metrics.to_jsonl_deterministic()) {
            eprintln!("failed to write metrics to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {} metric records to {path}", metrics.recs.len());
    }
    // Distinct generated tests only.
    let tests: Vec<_> = campaign
        .records
        .iter()
        .filter(|r| !r.by_simulation)
        .filter_map(|r| match &r.outcome {
            Outcome::Detected(tc) => Some(tc.clone()),
            _ => None,
        })
        .collect();
    if !json {
        println!("bus-SSL test set: {} tests", tests.len());
    }

    let design = model.design();
    let pipe = model.pipeline();
    let schedule = Schedule::build(design).expect("levelizes");
    let grade = |errors: &[ErrorModel]| {
        let mut detected = 0usize;
        for &e in errors {
            let hit = tests.iter().any(|tc| {
                let mut good = Machine::with_schedule(design, schedule.clone());
                let mut bad = Machine::with_schedule(design, schedule.clone());
                bad.set_error(Some(e));
                for m in [&mut good, &mut bad] {
                    for &(addr, word) in &tc.imem_image {
                        m.preload_mem(pipe.imem, addr, u64::from(word));
                    }
                    for &(addr, value) in &tc.dmem_image {
                        m.preload_mem(pipe.dmem, addr, value);
                    }
                }
                (0..tc.program.len() as u64 + 16).any(|_| good.step() != bad.step())
            });
            if hit {
                detected += 1;
            }
        }
        detected
    };

    let order = enumerate_bus_order_errors(design, &stages);
    let subs = enumerate_module_substitutions(design, &stages);
    let order_hit = grade(&order);
    let subs_hit = grade(&subs);

    if json {
        println!(
            "{{\"campaign\": {}, \"cross_coverage\": {{\
             \"test_set_size\": {}, \
             \"bus_order\": {{\"detected\": {}, \"total\": {}}}, \
             \"module_substitution\": {{\"detected\": {}, \"total\": {}}}}}}}",
            report.to_json(),
            tests.len(),
            order_hit,
            order.len(),
            subs_hit,
            subs.len()
        );
        return;
    }

    let show = |name: &str, detected: usize, total: usize| {
        println!(
            "{name:<28} {detected:>4}/{total:<4} = {:>5.1}%",
            100.0 * detected as f64 / total.max(1) as f64
        );
    };
    println!("\ncross coverage of the bus-SSL test set:");
    show("bus order errors", order_hit, order.len());
    show("module substitution errors", subs_hit, subs.len());
    println!(
        "\n(The bus-SSL tests were generated without knowledge of these models;\n\
         high incidental coverage is the classical argument for the model's use\n\
         as a verification driver.)"
    );
}
