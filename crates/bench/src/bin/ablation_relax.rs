//! **Relaxation-heuristics ablation** (§V.B): the paper notes that the
//! choice of which net to update "strongly influences convergence". This
//! binary compares the guided engine (backward solving of the activation
//! value plus class-specific masking fixes) against pure random
//! perturbation, on masking chains of increasing depth:
//!
//! ```text
//! y = ((((x + a0) & m0) + a1) & m1) ... registered, observable
//! ```
//!
//! The error sits on the innermost sum; every AND level masks it unless
//! its side word opens the stuck line's column.
//!
//! Usage: `cargo run --release -p hltg-bench --bin ablation_relax [trials]`

use hltg_core::dprelax::{Activation, MemImage, RelaxEngine, RelaxGoal};
use hltg_netlist::ctl::CtlBuilder;
use hltg_netlist::dp::{ArchId, DpBuilder, DpNetId};
use hltg_netlist::{Design, Stage};
use hltg_sim::{Injection, Polarity};
use hltg_core::SplitMix64;

/// Builds the masking chain; returns the design, its memory, and the
/// error site (the innermost sum).
fn masking_chain(depth: usize) -> (Design, ArchId, DpNetId) {
    let mut b = DpBuilder::new("chain");
    b.set_stage(Stage::new(0));
    let mem = b.arch_mem("m", 16);
    let a0 = b.constant("a0", 8, 0);
    let a1 = b.constant("a1", 8, 1);
    let x = b.mem_read("x", mem, a0);
    let y0 = b.mem_read("y0", mem, a1);
    let mut v = b.add("sum0", x, y0);
    let site = v;
    for level in 0..depth {
        let am = b.constant(format!("am{level}"), 8, 2 + 2 * level as u64);
        let aa = b.constant(format!("aa{level}"), 8, 3 + 2 * level as u64);
        let m = b.mem_read(format!("mask{level}"), mem, am);
        let a = b.mem_read(format!("addend{level}"), mem, aa);
        let masked = b.and(format!("and{level}"), v, m);
        v = b.add(format!("sum{}", level + 1), masked, a);
    }
    let r = b.reg("out", v);
    b.mark_output(r);
    let dp = b.finish().expect("valid");
    let ctl = CtlBuilder::new("ctl").finish().expect("valid");
    (Design::new("chain", dp, ctl), mem, site)
}

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    println!(
        "DPRELAX ablation: masking chains, {trials} seeds per depth, 96-iteration budget"
    );
    println!(
        "{:<8} {:>22} {:>22}",
        "depth", "guided conv/iters", "random conv/iters"
    );
    for depth in [1usize, 2, 3, 4, 6] {
        let (design, mem, site) = masking_chain(depth);
        let mut row = Vec::new();
        for guided in [true, false] {
            let mut converged = 0usize;
            let mut iters = 0usize;
            for seed in 0..trials {
                let inj = Injection {
                    net: site,
                    bit: 12,
                    polarity: Polarity::StuckAt0,
                };
                let mut engine =
                    RelaxEngine::new(&design, inj, vec![(mem, MemImage::free())]);
                engine.set_heuristics(guided);
                let goal = RelaxGoal {
                    activation: Activation {
                        net: site,
                        cycle: 0,
                        bit: 12,
                        want: true,
                    },
                    requirements: Vec::new(),
                    horizon: 3,
                };
                let mut rng = SplitMix64::seed_from_u64(seed as u64 * 7919 + depth as u64);
                match engine.solve(&goal, &mut rng, 96) {
                    Ok(sol) => {
                        converged += 1;
                        iters += sol.iterations;
                    }
                    Err(_) => iters += 96,
                }
            }
            row.push(format!(
                "{:>3}/{:<3} {:>6.1}",
                converged,
                trials,
                iters as f64 / trials as f64
            ));
        }
        println!("{depth:<8} {:>22} {:>22}", row[0], row[1]);
    }
    println!(
        "\nThe guided engine converges in a handful of iterations at any depth;\n\
         random perturbation degrades as each extra AND level multiplies the\n\
         probability of opening every mask column simultaneously."
    );
}
