//! Reproduces the **§VI design census**: the DLX test vehicle's size and
//! signal structure, side by side with the numbers the paper reports for
//! its DLX.
//!
//! Usage: `cargo run --release -p hltg-bench --bin census`

use hltg_core::pipeframe::SearchSpaceAnalysis;
use hltg_dlx::DlxDesign;
use hltg_errors::{enumerate_stage_errors, EnumPolicy};
use hltg_isa::instr::ALL_OPCODES;
use hltg_netlist::Stage;

fn main() {
    let dlx = DlxDesign::build();
    let dc = dlx.design.dp.census();
    let cc = dlx.design.ctl.census();
    let a = SearchSpaceAnalysis::of(&dlx.design.ctl);
    let stages = [Stage::new(2), Stage::new(3), Stage::new(4)];
    let errors = enumerate_stage_errors(&dlx.design, &stages, EnumPolicy::RepresentativePerBus);
    let all_bits = enumerate_stage_errors(&dlx.design, &stages, EnumPolicy::AllBits);

    println!("DLX test-vehicle census (paper §VI vs this implementation)");
    println!("{:<44} {:>8} {:>8}", "", "paper", "ours");
    println!("{:<44} {:>8} {:>8}", "instructions implemented", 44, ALL_OPCODES.len());
    println!("{:<44} {:>8} {:>8}", "pipeline stages", 5, 5);
    println!(
        "{:<44} {:>8} {:>8}",
        "datapath state bits (excl. register file)", 512, dc.state_bits
    );
    println!("{:<44} {:>8} {:>8}", "controller state bits", 96, cc.state_bits);
    println!("{:<44} {:>8} {:>8}", "controller tertiary signals", 43, cc.tertiary);
    println!(
        "{:<44} {:>8} {:>8}",
        "justify vars: timeframe -> pipeframe",
        96,
        a.pipeframe.justify
    );
    println!();
    println!("additional structure (ours):");
    println!("  datapath modules        {:>6}", dlx.design.dp.module_count());
    println!("  datapath nets           {:>6}", dlx.design.dp.net_count());
    println!("  datapath tertiary buses {:>6} ({} bits)", dc.tertiary_nets, dc.tertiary_bits);
    println!("  CTRL signals            {:>6}", dc.ctrl_signals);
    println!("  STS signals             {:>6}", dc.status_signals);
    println!("  controller gates        {:>6}", cc.gates);
    println!("  controller CPI bits     {:>6}", cc.cpi);
    println!("  modules by class        {:?}", dc.modules_by_class);
    println!();
    println!(
        "error population in EX/MEM/WB: {} (representative per bus; paper: 298), {} (all lines)",
        errors.len(),
        all_bits.len()
    );
    let verilog = hltg_netlist::export::to_verilog(&dlx.design);
    println!(
        "structural Verilog export: {} lines (paper's vehicle: 1552 lines, excl. library modules)",
        verilog.lines().count()
    );
    if std::env::args().any(|a| a == "--emit-verilog") {
        let path = "dlx_structural.v";
        std::fs::write(path, &verilog).expect("write verilog");
        println!("written to {path}");
    }
}
