//! Reproduces the **§IV / Figure 2 search-space analysis**: timeframe vs
//! pipeframe decision variables, analytically on the DLX controller and on
//! a synthetic sweep of tertiary fractions, plus an empirical
//! decisions/backtracks comparison of the two organizations on shared
//! controller objectives.
//!
//! Usage: `cargo run --release -p hltg-bench --bin fig2_searchspace [--sweep]`

use hltg_core::ctrljust::{self, CtrlJustConfig, Objective};
use hltg_core::pipeframe::SearchSpaceAnalysis;
use hltg_core::timeframe::justify_timeframe;
use hltg_core::unroll::Unrolled;
use hltg_dlx::DlxDesign;
use hltg_netlist::ctl::{CtlBuilder, CtlNetlist};
use hltg_netlist::Stage;

fn main() {
    let sweep = std::env::args().any(|a| a == "--sweep");
    let dlx = DlxDesign::build();

    println!("== Analytical comparison (paper §IV) ==");
    println!("{:<28} {:>8} {:>8}", "", "paper", "this DLX");
    let a = SearchSpaceAnalysis::of(&dlx.design.ctl);
    println!("{:<28} {:>8} {:>8}", "controller state bits (n2)", 96, a.n2_total);
    println!("{:<28} {:>8} {:>8}", "tertiary signals (n3)", 43, a.n3_total);
    println!(
        "{:<28} {:>8} {:>8}",
        "timeframe justify vars", 96, a.timeframe.justify
    );
    println!(
        "{:<28} {:>8} {:>8}",
        "pipeframe justify vars", 43, a.pipeframe.justify
    );
    println!(
        "{:<28} {:>7.1}x {:>7.1}x",
        "reduction",
        96.0 / 43.0,
        a.justify_reduction().unwrap_or(f64::NAN)
    );
    println!(
        "per-frame assignment-space shrink: 2^{} (log2 ratio)",
        a.log2_space_ratio()
    );

    println!("\n== Empirical comparison on shared controller objectives ==");
    println!(
        "{:<32} {:>10} {:>10} {:>10} {:>10}",
        "objective", "tf decide", "tf state", "tf btrack", "pf decide"
    );
    let cases = [
        ("store in MEM @5", dlx.ctl.c_mem_we, 5usize, true),
        ("regwrite in WB @6", dlx.ctl.c_rf_we, 6, true),
        ("ALU-imm in EX @4", dlx.ctl.c_alu_b_imm, 4, true),
        ("no squash @6", dlx.ctl.squash, 6, false),
    ];
    for (name, net, frame, value) in cases {
        let objs = [Objective { frame, net, value }];
        let tf = justify_timeframe(&dlx.design.ctl, &objs, 5000);
        let mut u = Unrolled::new(&dlx.design.ctl, frame + 2);
        let pf = ctrljust::justify(&mut u, &objs, &[], CtrlJustConfig::default());
        match (tf.solved, pf) {
            (true, Ok(pf)) => println!(
                "{name:<32} {:>10} {:>10} {:>10} {:>10}",
                tf.decisions, tf.state_decisions, tf.backtracks, pf.decisions
            ),
            (solved, pf) => println!(
                "{name:<32} tf_solved={solved} pf={:?}",
                pf.map(|j| j.decisions)
            ),
        }
    }

    if sweep {
        println!("\n== Synthetic sweep: tertiary fraction n3/n2 (§IV degenerate case) ==");
        println!(
            "{:<10} {:>6} {:>6} {:>12} {:>12}",
            "n3/n2", "n2", "n3", "tf justify", "pf justify"
        );
        for tertiary in [0usize, 4, 8, 16, 24, 32] {
            let ctl = synthetic_controller(32, tertiary);
            let a = SearchSpaceAnalysis::of(&ctl);
            println!(
                "{:<10.2} {:>6} {:>6} {:>12} {:>12}{}",
                tertiary as f64 / 32.0,
                a.n2_total,
                a.n3_total,
                a.timeframe.justify,
                a.pipeframe.justify,
                if a.is_degenerate() {
                    "   <- degenerates to timeframe"
                } else {
                    ""
                }
            );
        }
    }
}

/// A synthetic pipelined controller with `state` flip-flops of which
/// `tertiary` are marked as cross-stage signals.
fn synthetic_controller(state: usize, tertiary: usize) -> CtlNetlist {
    let mut b = CtlBuilder::new("synthetic");
    b.set_stage(Stage::new(0));
    let inputs: Vec<_> = (0..6).map(|i| b.cpi(format!("i{i}"))).collect();
    let mut ffs = Vec::new();
    for k in 0..state {
        let a = inputs[k % 6];
        let c = inputs[(k + 1) % 6];
        let g = if k % 2 == 0 { b.and(&[a, c]) } else { b.or(&[a, c]) };
        b.set_stage(Stage::new((k % 3) as u8));
        ffs.push(b.ff(format!("q{k}"), g, false));
    }
    for &q in ffs.iter().take(tertiary) {
        b.mark_tertiary(q);
    }
    let out = b.and(&[ffs[0], ffs[1]]);
    b.mark_cpo(out);
    b.finish().expect("synthetic controller is valid")
}
