//! Reproduces **Table 1**: test generation for bus SSL errors in the
//! error stages of the selected design's datapath (the classic DLX's
//! EX/MEM/WB by default).
//!
//! Usage: `cargo run --release -p hltg-bench --bin table1 [limit]
//!         [--design NAME] [--list-designs] [--error-sim] [--no-collapse]
//!         [--no-sim-cache] [--no-packed-screen]
//!         [--threads N] [--json] [--trace-out PATH] [--progress]
//!         [--metrics-out PATH] [--metrics-every N] [--metrics-full]
//!         [--resume PATH] [--retry N] [--max-steps N]
//!         [--soft-deadline-ms MS] [--chaos-panic PERMILLE]
//!         [--chaos-seed S] [--prove-untestable] [--prove-frames K]`
//!
//! `--design NAME` selects the processor backend (default `dlx`) from
//! the process-wide [`hltg_netlist::registry`]; `--list-designs` prints
//! the registered names, one per line, and exits. Every workspace
//! backend crate (`hltg-dlx`: `dlx`, `dlx16`, `dlx-lite`; `hltg-rv32`:
//! `rv32`, `rv32-7`) registers itself here before resolution.
//!
//! `--threads N` shards the campaign over N worker threads (default: all
//! available cores; results are identical for any N). `--json` emits the
//! machine-readable [`hltg_core::CampaignReport`] — stats plus the
//! per-phase DPTRACE/CTRLJUST/DPRELAX instrumentation counters — instead
//! of the human-readable table. `--trace-out PATH` writes the structured
//! JSONL trace (per-error spans, per-phase histograms; see DESIGN.md
//! §Observability) to `PATH`, and `--progress` prints a periodic stderr
//! progress line with per-phase p50/p99 latency, an errors/sec rate and
//! an ETA.
//!
//! `--metrics-out PATH` writes the campaign flight-recorder timeline
//! (see DESIGN.md §Observability v2): per-error metric records, periodic
//! cumulative snapshots (every `--metrics-every N` completions, default
//! 8), the stage × error-class detection matrix and the
//! detection-latency histogram, as JSONL for `campaign_report`. The
//! default stream is deterministic — byte-identical for any `--threads`
//! value; `--metrics-full` adds the wall-clock and live counter-sample
//! fields (which race with worker scheduling).
//!
//! Resilience flags (see DESIGN.md §Resilience): `--resume PATH`
//! checkpoints every finished error to a JSONL file and skips errors the
//! file already holds, so a killed campaign resumes instead of starting
//! over; `--retry N` re-runs aborted errors for up to N escalated rounds;
//! `--max-steps N` sets the deterministic per-error step budget;
//! `--soft-deadline-ms MS` stops workers *claiming* new errors past the
//! deadline (outcomes are unaffected); `--chaos-panic PERMILLE` (with
//! `--chaos-seed S`) deterministically injects panics into the engine
//! phases to exercise the isolation machinery.
//!
//! `--prove-untestable` runs the untestability prover on every error the
//! generator aborts: a certified proof reclassifies the error as
//! `proven_untestable` (excluded from testable coverage, skipped by the
//! retry rounds); `--prove-frames K` bounds the proof window (default 8
//! pipeframes).
//!
//! Reuse flags (see DESIGN.md §Campaign-level reuse): this binary runs
//! with error-class collapsing on by default — `--no-collapse` restores
//! the classic one-generation-per-error loop, `--no-sim-cache`
//! disables both the shared-prefix simulation cache and the `CTRLJUST`
//! memo, and `--no-packed-screen` disables the fault-parallel (packed)
//! screening passes (the screening verdicts and the report are identical
//! either way; only run time and the `*_cache`/`*_memo`/`packed_*`
//! counters move).

use hltg_core::{Campaign, CampaignConfig, ChaosConfig, RunOptions};
use std::path::PathBuf;
use std::time::Duration;

fn parse_or_exit<T: std::str::FromStr>(flag: &str, value: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse {value:?}");
        std::process::exit(2);
    })
}

fn register_backends() {
    hltg_dlx::register_backends();
    hltg_rv32::register_backends();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list-designs") {
        register_backends();
        for name in hltg_netlist::registry::backend_names() {
            println!("{name}");
        }
        return;
    }
    let error_simulation = args.iter().any(|a| a == "--error-sim");
    let no_collapse = args.iter().any(|a| a == "--no-collapse");
    let no_sim_cache = args.iter().any(|a| a == "--no-sim-cache");
    let no_packed_screen = args.iter().any(|a| a == "--no-packed-screen");
    let json = args.iter().any(|a| a == "--json");
    let progress = args.iter().any(|a| a == "--progress");
    let metrics_full = args.iter().any(|a| a == "--metrics-full");
    let prove_untestable = args.iter().any(|a| a == "--prove-untestable");
    // Value-carrying flags: record the value's position so the positional
    // limit scan below can skip it.
    let mut value_positions: Vec<usize> = Vec::new();
    let mut value_of = |name: &str| -> Option<String> {
        let i = args.iter().position(|a| a == name)?;
        value_positions.push(i + 1);
        match args.get(i + 1) {
            Some(v) => Some(v.clone()),
            None => {
                eprintln!("{name} requires a value argument");
                std::process::exit(2);
            }
        }
    };
    let design_name = value_of("--design").unwrap_or_else(|| "dlx".to_string());
    let num_threads: Option<usize> =
        value_of("--threads").map(|v| parse_or_exit("--threads", &v));
    let trace_out: Option<String> = value_of("--trace-out");
    let metrics_out: Option<String> = value_of("--metrics-out");
    let metrics_every: Option<usize> =
        value_of("--metrics-every").map(|v| parse_or_exit("--metrics-every", &v));
    let resume: Option<String> = value_of("--resume");
    let retry: Option<u32> = value_of("--retry").map(|v| parse_or_exit("--retry", &v));
    let max_steps: Option<u64> =
        value_of("--max-steps").map(|v| parse_or_exit("--max-steps", &v));
    let soft_deadline_ms: Option<u64> =
        value_of("--soft-deadline-ms").map(|v| parse_or_exit("--soft-deadline-ms", &v));
    let chaos_panic: Option<u32> =
        value_of("--chaos-panic").map(|v| parse_or_exit("--chaos-panic", &v));
    let chaos_seed: Option<u64> =
        value_of("--chaos-seed").map(|v| parse_or_exit("--chaos-seed", &v));
    let prove_frames: Option<usize> =
        value_of("--prove-frames").map(|v| parse_or_exit("--prove-frames", &v));
    // The limit is the first positional argument: not a flag, and not a
    // value consumed by one.
    let limit: Option<usize> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && !value_positions.contains(i))
        .find_map(|(_, s)| s.parse().ok());

    register_backends();
    let model = hltg_netlist::registry::build_model(&design_name).unwrap_or_else(|| {
        eprintln!(
            "--design {design_name}: unknown backend (registered: {})",
            hltg_netlist::registry::backend_names().join(", ")
        );
        std::process::exit(2);
    });
    let mut config = CampaignConfig {
        stages: model.error_stages(),
        limit,
        error_simulation,
        collapse: !no_collapse,
        sim_cache: !no_sim_cache,
        packed_screen: !no_packed_screen,
        ..CampaignConfig::default()
    };
    config.tg.ctrljust_memo = !no_sim_cache;
    if let Some(n) = num_threads {
        config.num_threads = n;
    }
    if let Some(n) = max_steps {
        config.tg.max_steps = Some(n);
    }
    if let Some(rounds) = retry {
        config.retry.rounds = rounds;
    }
    if let Some(path) = resume {
        config.checkpoint = Some(PathBuf::from(path));
    }
    if let Some(ms) = soft_deadline_ms {
        config.soft_deadline = Some(Duration::from_millis(ms));
    }
    config.prove_untestable = prove_untestable;
    if let Some(k) = prove_frames {
        config.prove_frames = k;
    }
    if chaos_panic.is_some() || chaos_seed.is_some() {
        let mut chaos = ChaosConfig::default();
        if let Some(p) = chaos_panic {
            chaos.panic_permille = p;
        }
        if let Some(s) = chaos_seed {
            chaos.seed = s;
        }
        config.chaos = Some(chaos);
    }

    eprintln!(
        "running the {} bus-SSL campaign on {} ({} thread{})...",
        model.stage_label(&config.stages),
        model.name(),
        config.effective_threads(),
        if config.effective_threads() == 1 { "" } else { "s" }
    );
    let opts = RunOptions {
        trace: trace_out.is_some(),
        progress,
        metrics: metrics_out
            .is_some()
            .then(|| metrics_every.unwrap_or(8).max(1)),
        ..RunOptions::default()
    };
    let run = Campaign::run(model.as_ref(), &config, opts);
    let (campaign, report) = (run.campaign, run.report);
    if let (Some(path), Some(trace)) = (&trace_out, &run.trace) {
        if let Err(e) = std::fs::write(path, trace.to_jsonl()) {
            eprintln!("failed to write trace to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "wrote {} spans to {path}",
            trace.spans.len()
        );
    }
    if let (Some(path), Some(metrics)) = (&metrics_out, &run.metrics) {
        let jsonl = if metrics_full {
            metrics.to_jsonl()
        } else {
            metrics.to_jsonl_deterministic()
        };
        if let Err(e) = std::fs::write(path, jsonl) {
            eprintln!("failed to write metrics to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "wrote {} metric records ({} snapshots) to {path}",
            metrics.recs.len(),
            metrics.snaps.len()
        );
    }

    if json {
        println!("{}", report.to_json());
        return;
    }

    println!("{}", campaign.table1_report());

    let stats = campaign.stats();
    println!("sequence-length histogram (detected errors):");
    for (len, &count) in stats.length_histogram.iter().enumerate() {
        if count > 0 {
            println!("  {len:>3}: {count:>3} {}", "#".repeat(count.min(60)));
        }
    }
    println!(
        "\nqualitative check (paper: 'a few non-trivial instructions followed by NOPs'):\n\
         average core (non-NOP) length {:.1} of {:.1} total instructions.",
        stats.avg_core_length, stats.avg_length
    );
    println!("\nper-stage breakdown:");
    for (stage, errors, detected) in &stats.by_stage {
        println!(
            "  {}: {detected}/{errors} detected",
            hltg_netlist::stage::stage_name(
                hltg_netlist::Stage::new(*stage as u8),
                model.pipeline().depth
            )
        );
    }
}
