//! Reproduces **Table 1**: test generation for bus SSL errors in the
//! execute, memory and write-back stages of the DLX datapath.
//!
//! Usage: `cargo run --release -p hltg-bench --bin table1 [limit]
//!         [--error-sim] [--threads N] [--json] [--trace-out PATH]
//!         [--progress]`
//!
//! `--threads N` shards the campaign over N worker threads (default: all
//! available cores; results are identical for any N). `--json` emits the
//! machine-readable [`hltg_core::CampaignReport`] — stats plus the
//! per-phase DPTRACE/CTRLJUST/DPRELAX instrumentation counters — instead
//! of the human-readable table. `--trace-out PATH` writes the structured
//! JSONL trace (per-error spans, per-phase histograms; see DESIGN.md
//! §Observability) to `PATH`, and `--progress` prints a periodic stderr
//! progress line with per-phase p50/p99 latency and an ETA.

use hltg_core::{Campaign, CampaignConfig, ObserveOptions};
use hltg_dlx::DlxDesign;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let error_simulation = args.iter().any(|a| a == "--error-sim");
    let json = args.iter().any(|a| a == "--json");
    let progress = args.iter().any(|a| a == "--progress");
    let threads_pos = args.iter().position(|a| a == "--threads");
    let num_threads: Option<usize> = threads_pos
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok());
    let trace_pos = args.iter().position(|a| a == "--trace-out");
    let trace_out: Option<String> = trace_pos.and_then(|i| args.get(i + 1)).cloned();
    if trace_pos.is_some() && trace_out.is_none() {
        eprintln!("--trace-out requires a path argument");
        std::process::exit(2);
    }
    // The limit is the first positional argument: not a flag, and not a
    // value consumed by `--threads` / `--trace-out`.
    let limit: Option<usize> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !a.starts_with("--")
                && Some(i.wrapping_sub(1)) != threads_pos
                && Some(i.wrapping_sub(1)) != trace_pos
        })
        .find_map(|(_, s)| s.parse().ok());

    let dlx = DlxDesign::build();
    let mut config = CampaignConfig {
        limit,
        error_simulation,
        ..CampaignConfig::default()
    };
    if let Some(n) = num_threads {
        config.num_threads = n;
    }

    eprintln!(
        "running the EX/MEM/WB bus-SSL campaign ({} thread{})...",
        config.num_threads.max(1),
        if config.num_threads.max(1) == 1 { "" } else { "s" }
    );
    let opts = ObserveOptions {
        trace: trace_out.is_some(),
        progress,
    };
    let run = Campaign::run_observed(&dlx, &config, &opts);
    let (campaign, report) = (run.campaign, run.report);
    if let (Some(path), Some(trace)) = (&trace_out, &run.trace) {
        if let Err(e) = std::fs::write(path, trace.to_jsonl()) {
            eprintln!("failed to write trace to {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "wrote {} spans to {path}",
            trace.spans.len()
        );
    }

    if json {
        println!("{}", report.to_json());
        return;
    }

    println!("{}", campaign.table1_report());

    let stats = campaign.stats();
    println!("sequence-length histogram (detected errors):");
    for (len, &count) in stats.length_histogram.iter().enumerate() {
        if count > 0 {
            println!("  {len:>3}: {count:>3} {}", "#".repeat(count.min(60)));
        }
    }
    println!(
        "\nqualitative check (paper: 'a few non-trivial instructions followed by NOPs'):\n\
         average core (non-NOP) length {:.1} of {:.1} total instructions.",
        stats.avg_core_length, stats.avg_length
    );
    println!("\nper-stage breakdown:");
    for (stage, errors, detected) in &stats.by_stage {
        println!(
            "  {}: {detected}/{errors} detected",
            hltg_netlist::stage::stage_name(hltg_netlist::Stage::new(*stage as u8), 5)
        );
    }
}
