//! Reproduces **Table 1**: test generation for bus SSL errors in the
//! execute, memory and write-back stages of the DLX datapath.
//!
//! Usage: `cargo run --release -p hltg-bench --bin table1 [limit]`

use hltg_core::{Campaign, CampaignConfig};
use hltg_dlx::DlxDesign;

fn main() {
    let limit: Option<usize> = std::env::args().nth(1).and_then(|s| s.parse().ok());
    let error_simulation = std::env::args().any(|a| a == "--error-sim");
    let dlx = DlxDesign::build();
    let config = CampaignConfig {
        limit,
        error_simulation,
        ..CampaignConfig::default()
    };
    eprintln!("running the EX/MEM/WB bus-SSL campaign...");
    let campaign = Campaign::run(&dlx, &config);
    println!("{}", campaign.table1_report());

    let stats = campaign.stats();
    println!("sequence-length histogram (detected errors):");
    for (len, &count) in stats.length_histogram.iter().enumerate() {
        if count > 0 {
            println!("  {len:>3}: {count:>3} {}", "#".repeat(count.min(60)));
        }
    }
    println!(
        "\nqualitative check (paper: 'a few non-trivial instructions followed by NOPs'):\n\
         average core (non-NOP) length {:.1} of {:.1} total instructions.",
        stats.avg_core_length, stats.avg_length
    );
    println!("\nper-stage breakdown:");
    for (stage, errors, detected) in &stats.by_stage {
        println!(
            "  {}: {detected}/{errors} detected",
            hltg_netlist::stage::stage_name(hltg_netlist::Stage::new(*stage as u8), 5)
        );
    }
}
