//! Single-error TG debugging harness: `tg_debug <error-id> [--design NAME]`.
use hltg_core::tg::{Outcome, TestGenerator, TgConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let id: usize = args
        .iter()
        .find(|s| !s.starts_with("--"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let design_name = args
        .iter()
        .position(|a| a == "--design")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "dlx".to_string());
    hltg_dlx::register_backends();
    hltg_rv32::register_backends();
    let model =
        hltg_netlist::registry::build_model(&design_name).expect("registered backend");
    let errors = hltg_errors::enumerate_stage_errors(
        model.design(),
        &model.error_stages(),
        hltg_errors::EnumPolicy::RepresentativePerBus,
    );
    let e = &errors[id];
    println!("error: {e}");
    let cfg = TgConfig { debug: true, max_variants: 4, ..TgConfig::default() };
    let mut tg = TestGenerator::new(model.as_ref(), cfg);
    match tg.generate(e) {
        Outcome::Detected(tc) => {
            println!("DETECTED len={} core={} cycle={}", tc.length, tc.core_len, tc.detected_cycle);
            println!("{}", tc.program.listing());
            println!("dmem: {:?}", tc.dmem_image);
        }
        Outcome::Aborted { reason, backtracks } => println!("ABORTED {reason:?} bt={backtracks}"),
        Outcome::ProvenUntestable(p) => {
            println!("PROVEN UNTESTABLE {} k={}", p.kind.name(), p.frames);
        }
    }
}
