//! Single-error TG debugging harness: `tg_debug <error-id>`.
use hltg_core::tg::{Outcome, TestGenerator, TgConfig};

fn main() {
    let id: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0);
    let dlx = hltg_dlx::DlxDesign::build();
    let stages: Vec<_> = [2u8, 3, 4].iter().map(|&s| hltg_netlist::Stage::new(s)).collect();
    let errors = hltg_errors::enumerate_stage_errors(
        &dlx.design,
        &stages,
        hltg_errors::EnumPolicy::RepresentativePerBus,
    );
    let e = &errors[id];
    println!("error: {e}");
    let cfg = TgConfig { debug: true, max_variants: 4, ..TgConfig::default() };
    let mut tg = TestGenerator::new(&dlx, cfg);
    match tg.generate(e) {
        Outcome::Detected(tc) => {
            println!("DETECTED len={} core={} cycle={}", tc.length, tc.core_len, tc.detected_cycle);
            println!("{}", tc.program.listing());
            println!("dmem: {:?}", tc.dmem_image);
        }
        Outcome::Aborted { reason, backtracks } => println!("ABORTED {reason:?} bt={backtracks}"),
    }
}
