//! Minimal std-only micro-benchmark harness.
//!
//! Replaces the former Criterion dependency so the workspace builds with
//! `cargo build --offline` on a cold registry. Each bench target is a plain
//! `harness = false` binary that calls [`bench`] per named case; output is
//! one line per bench with min / median / mean wall-clock time. A bench
//! set finishes with [`write_json_report`], which drops a machine-readable
//! `BENCH_<set>.json` at the repo root so the perf trajectory is tracked
//! across PRs.

use hltg_core::instrument::json_escape;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Re-export so bench targets only need `use hltg_bench::harness::*;`.
pub use std::hint::black_box as bb;

/// Number of timed samples per bench.
const SAMPLES: usize = 10;

/// Measurement of one bench: per-sample wall-clock durations.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Bench name as printed in the report line.
    pub name: String,
    /// One duration per timed sample, in collection order.
    pub samples: Vec<Duration>,
    /// Items processed per iteration, for throughput benches
    /// ([`bench_throughput`]); `None` for plain timing benches.
    pub elements: Option<u64>,
}

impl Measurement {
    fn sorted(&self) -> Vec<Duration> {
        let mut s = self.samples.clone();
        s.sort_unstable();
        s
    }

    /// Fastest sample.
    pub fn min(&self) -> Duration {
        self.sorted()[0]
    }

    /// Median sample: the middle sample for odd counts, the midpoint of
    /// the two middle samples for even counts.
    pub fn median(&self) -> Duration {
        let s = self.sorted();
        let n = s.len();
        if n % 2 == 1 {
            s[n / 2]
        } else {
            (s[n / 2 - 1] + s[n / 2]) / 2
        }
    }

    /// Slowest sample.
    #[must_use]
    pub fn max(&self) -> Duration {
        *self.sorted().last().expect("at least one sample")
    }

    /// Arithmetic mean of all samples.
    pub fn mean(&self) -> Duration {
        self.samples.iter().sum::<Duration>() / self.samples.len().max(1) as u32
    }

    /// Median throughput in elements per second, for benches that declared
    /// an element count.
    pub fn elements_per_sec(&self) -> Option<f64> {
        let elements = self.elements?;
        let secs = self.median().as_secs_f64();
        if secs <= 0.0 {
            return None;
        }
        Some(elements as f64 / secs)
    }
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Times `f` for [`SAMPLES`] samples (after one untimed warm-up call),
/// prints a `name  min/median/mean` report line, and returns the raw
/// measurement. The closure's result is passed through [`black_box`] so
/// the benched computation is not optimised away.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> Measurement {
    black_box(f()); // warm-up
    let samples: Vec<Duration> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed()
        })
        .collect();
    let m = Measurement {
        name: name.to_string(),
        samples,
        elements: None,
    };
    println!(
        "{:<32} min {:>10}   median {:>10}   mean {:>10}",
        m.name,
        fmt(m.min()),
        fmt(m.median()),
        fmt(m.mean())
    );
    m
}

/// Like [`bench`] but also reports per-element throughput for benches
/// that process `elements` items per iteration. The element count is
/// carried on the returned [`Measurement`], so [`write_json_report`]
/// emits `elements` / `elements_per_sec` for it.
pub fn bench_throughput<T>(name: &str, elements: u64, f: impl FnMut() -> T) -> Measurement {
    let mut m = bench(name, f);
    m.elements = Some(elements);
    let per = m.median().as_nanos() as f64 / elements.max(1) as f64;
    println!("{:<32} {per:.1} ns/element ({elements} elements)", "");
    m
}

/// Renders the `BENCH_<set>.json` payload: one object per measurement
/// with `median_ns` / `min_ns` / `max_ns` / `mean_ns`, plus `elements`
/// and `elements_per_sec` for throughput benches.
#[must_use]
pub fn render_json_report(set_name: &str, measurements: &[Measurement]) -> String {
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"bench_set\": \"{}\", \"samples\": {SAMPLES}, \"benches\": [",
        json_escape(set_name)
    ));
    for (i, m) in measurements.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"name\": \"{}\", \"median_ns\": {}, \"min_ns\": {}, \
             \"max_ns\": {}, \"mean_ns\": {}",
            json_escape(&m.name),
            m.median().as_nanos(),
            m.min().as_nanos(),
            m.max().as_nanos(),
            m.mean().as_nanos()
        ));
        if let Some(elements) = m.elements {
            out.push_str(&format!(", \"elements\": {elements}"));
            if let Some(eps) = m.elements_per_sec() {
                out.push_str(&format!(", \"elements_per_sec\": {}", eps.round()));
            }
        }
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

/// Writes `BENCH_<set_name>.json` at the repository root (see
/// [`render_json_report`] for the payload), so the perf trajectory is
/// machine-readable across PRs. Failures are reported on stderr but do
/// not abort the bench run.
pub fn write_json_report(set_name: &str, measurements: &[Measurement]) {
    let out = render_json_report(set_name, measurements);
    // crates/bench -> workspace root.
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(format!("BENCH_{set_name}.json"));
    match std::fs::write(&path, &out) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hltg_core::jsonv;

    fn meas(name: &str, ns: &[u64]) -> Measurement {
        Measurement {
            name: name.to_string(),
            samples: ns.iter().map(|&n| Duration::from_nanos(n)).collect(),
            elements: None,
        }
    }

    /// Regression: the median of an even sample count is the midpoint of
    /// the two middle samples, not the lower one.
    #[test]
    fn median_is_the_midpoint_for_even_counts() {
        let odd = meas("odd", &[30, 10, 20]);
        assert_eq!(odd.median(), Duration::from_nanos(20));
        let even = meas("even", &[40, 10, 30, 20]);
        assert_eq!(even.median(), Duration::from_nanos(25));
        let skewed = meas("skewed", &[1, 1, 1, 1_000_000]);
        assert_eq!(skewed.median(), Duration::from_nanos(1));
    }

    /// The rendered report survives hostile bench-set and bench names: it
    /// stays parseable and round-trips the exact strings.
    #[test]
    fn report_round_trips_hostile_names() {
        let hostile = "quote\" back\\slash \n\t\u{1} control}{";
        let mut m = meas(hostile, &[100, 200, 300, 400]);
        m.elements = Some(64);
        let json = render_json_report(hostile, &[m]);
        let v = jsonv::parse(&json).expect("report parses");
        assert_eq!(v.get_str("bench_set"), Some(hostile));
        let benches = v.get("benches").and_then(|b| b.as_arr()).expect("array");
        assert_eq!(benches.len(), 1);
        assert_eq!(benches[0].get_str("name"), Some(hostile));
        assert_eq!(benches[0].get_u64("median_ns"), Some(250));
        assert_eq!(benches[0].get_u64("elements"), Some(64));
        assert!(benches[0].get_f64("elements_per_sec").is_some());
    }
}
