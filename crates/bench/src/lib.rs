//! Benchmark harness for the `hltg` workspace.
//!
//! Each table and figure of the paper's evaluation has a report binary
//! (`src/bin/`) that regenerates it, plus std-only micro-benches
//! (`benches/`, see [`harness`]) measuring the underlying engines:
//!
//! | target | reproduces |
//! |---|---|
//! | `table1` | Table 1 (the bus-SSL campaign) |
//! | `fig2_searchspace` | §IV search-space analysis + empirical baseline |
//! | `fig5_tables` | Figure 5 C/O propagation tables |
//! | `census` | §VI design census (state/tertiary/CTRL counts) |
//! | `ablation_relax` | §V.B relaxation-heuristics ablation |
//! | `tg_debug <id>` | single-error generation with step tracing |

pub mod harness;
