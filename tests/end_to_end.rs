//! End-to-end integration: the full pipeline from error enumeration through
//! test generation to *independent* confirmation.
//!
//! For each sampled error, the generated test is replayed from scratch on a
//! fresh good/bad machine pair (not the one the generator used), and the
//! good machine's final architectural state is cross-checked against the
//! ISA reference simulator — the implementation-vs-specification comparison
//! that defines design verification.

use hltg::core::{Outcome, TestGenerator, TgConfig};
use hltg::dlx::{DlxDesign, DlxModel};
use hltg::errors::{enumerate_stage_errors, EnumPolicy};
use hltg::isa::ref_sim::ArchSim;
use hltg::netlist::Stage;
use hltg::sim::{DualSim, Machine};

fn ex_mem_wb() -> [Stage; 3] {
    [Stage::new(2), Stage::new(3), Stage::new(4)]
}

/// Replays a generated test on a fresh dual pair; returns the discrepancy
/// cycle if the error is detected.
fn replay(dlx: &DlxDesign, test: &hltg::core::tg::TestCase, error: &hltg::errors::BusSslError) -> Option<u64> {
    let mut dual = DualSim::new(&dlx.design, error.to_injection()).expect("levelizes");
    dual.with_both(|m| {
        for &(addr, word) in &test.imem_image {
            m.preload_mem(dlx.dp.imem, addr, u64::from(word));
        }
        for &(addr, value) in &test.dmem_image {
            m.preload_mem(dlx.dp.dmem, addr, value);
        }
    });
    dual.run(96).map(|d| d.cycle)
}

#[test]
fn generated_tests_replay_and_detect() {
    let model = DlxModel::new();
    let dlx = model.inner();
    let errors = enumerate_stage_errors(
        &dlx.design,
        &ex_mem_wb(),
        EnumPolicy::RepresentativePerBus,
    );
    let mut tg = TestGenerator::new(&model, TgConfig::default());
    let mut detected = 0;
    for error in errors.iter().take(24) {
        if let Outcome::Detected(test) = tg.generate(error) {
            assert!(
                replay(dlx, &test, error).is_some(),
                "{error}: generated test does not replay to a detection"
            );
            detected += 1;
        }
    }
    assert!(detected >= 14, "only {detected} of 24 errors detected");
}

/// The good machine running a generated test must match the ISA reference
/// simulator — errors in the *implementation* are what we hunt; the good
/// machine itself must stay correct under generated stimuli. Register
/// indirect jumps may leave the linear program region, so the comparison
/// uses the shared fetch stream length.
#[test]
fn generated_tests_keep_good_machine_architecturally_correct() {
    let model = DlxModel::new();
    let dlx = model.inner();
    let errors = enumerate_stage_errors(
        &dlx.design,
        &ex_mem_wb(),
        EnumPolicy::RepresentativePerBus,
    );
    let mut tg = TestGenerator::new(&model, TgConfig::default());
    let mut checked = 0;
    for error in errors.iter().take(16) {
        let Outcome::Detected(test) = tg.generate(error) else {
            continue;
        };
        // Build the shared initial world.
        let mut machine = Machine::new(&dlx.design).expect("levelizes");
        let mut spec = ArchSim::new();
        for &(addr, word) in &test.imem_image {
            machine.preload_mem(dlx.dp.imem, addr, u64::from(word));
            spec.load_program(4 * addr as u32, &[word]);
        }
        for &(addr, value) in &test.dmem_image {
            machine.preload_mem(dlx.dp.dmem, addr, value);
            spec.set_mem_word(4 * addr as u32, value as u32);
        }
        // Run the pipeline long enough to retire everything, the spec for
        // the same dynamic instruction count.
        let cycles = test.program.len() as u64 + 24;
        for _ in 0..cycles {
            machine.step();
        }
        spec.run(cycles as usize);
        for r in 1..32u32 {
            assert_eq!(
                machine.read_reg(dlx.dp.gpr, r),
                u64::from(spec.reg(hltg::isa::Reg(r as u8))),
                "{error}: r{r} diverges between pipeline and ISA reference\n{}",
                test.program.listing()
            );
        }
        checked += 1;
    }
    assert!(checked >= 10, "only {checked} tests cross-checked");
}

/// Aborted errors stay aborted for a reason: provably redundant,
/// observable only through the controller, or a search-budget artifact
/// that an escalated budget (what the campaign's retry rounds apply)
/// recovers into a detection.
#[test]
fn aborts_are_explained() {
    let model = DlxModel::new();
    let dlx = model.inner();
    let errors = enumerate_stage_errors(
        &dlx.design,
        &ex_mem_wb(),
        EnumPolicy::RepresentativePerBus,
    );
    let mut tg = TestGenerator::new(&model, TgConfig::default());
    for error in errors.iter().take(36) {
        if let Outcome::Aborted { reason, .. } = tg.generate(error) {
            let redundant = hltg::errors::is_structurally_redundant(&dlx.design, error);
            let control_only = reason == hltg::core::tg::AbortReason::NoPath;
            if redundant || control_only {
                continue;
            }
            // Default budgets can strand a testable error on an unlucky
            // variant ordering; the escalated budget must recover it.
            let escalated = TgConfig {
                max_variants: 32,
                ctrljust: hltg::core::ctrljust::CtrlJustConfig {
                    max_backtracks: 20_000,
                },
                ..TgConfig::default()
            };
            let mut tg2 = TestGenerator::new(&model, escalated);
            assert!(
                matches!(tg2.generate(error), Outcome::Detected(_)),
                "{error}: aborted with {reason:?} but is neither redundant, \
                 control-only, nor recoverable under an escalated budget"
            );
        }
    }
}

/// The generator handles arbitrary line positions, not just the
/// representative middle line: spot-check low, middle and sign lines of
/// the ALU output under both polarities.
#[test]
fn all_bit_positions_are_generatable() {
    let model = DlxModel::new();
    let dlx = model.inner();
    let mut tg = TestGenerator::new(&model, TgConfig::default());
    let all = enumerate_stage_errors(&dlx.design, &ex_mem_wb(), EnumPolicy::AllBits);
    let mut checked = 0;
    for error in all.iter().filter(|e| {
        std::ptr::eq(dlx.design.dp.net(e.net), dlx.design.dp.net(dlx.dp.alu_out))
            && matches!(e.bit, 0 | 15 | 31)
    }) {
        let outcome = tg.generate(error);
        match outcome {
            Outcome::Detected(test) => {
                assert!(replay(dlx, &test, error).is_some(), "{error}");
                checked += 1;
            }
            Outcome::Aborted { .. } | Outcome::ProvenUntestable(_) => {
                panic!("{error}: ALU lines must be testable")
            }
        }
    }
    assert_eq!(checked, 6, "three lines x two polarities");
}
