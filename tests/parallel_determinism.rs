//! The sharded campaign runner is deterministic: any thread count yields
//! bit-for-bit identical statistics and Table 1 report, with and without
//! error-simulation compaction.

use hltg::core::{Campaign, CampaignConfig, CampaignStats, RunOptions};
use hltg::dlx::DlxModel;
use hltg::errors::EnumPolicy;
use hltg::netlist::ProcessorModel;

/// Stats with the wall-clock field zeroed: `seconds` is the only
/// legitimately run-dependent quantity.
fn stats_sans_time(c: &Campaign) -> CampaignStats {
    let mut s = c.stats();
    s.seconds = 0.0;
    s
}

/// The Table 1 report with its timing line removed.
fn report_sans_time(c: &Campaign) -> String {
    c.table1_report()
        .lines()
        .filter(|l| !l.contains("CPU time"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn run_at(model: &dyn ProcessorModel, num_threads: usize, error_simulation: bool) -> Campaign {
    Campaign::run(
        model,
        &CampaignConfig {
            limit: Some(16),
            error_simulation,
            num_threads,
            ..CampaignConfig::default()
        },
        RunOptions::default(),
    )
    .campaign
}

#[test]
fn thread_count_does_not_change_results() {
    let dlx = DlxModel::new();
    for error_simulation in [false, true] {
        let base = run_at(&dlx, 1, error_simulation);
        let base_stats = stats_sans_time(&base);
        let base_report = report_sans_time(&base);
        assert!(base_stats.errors > 0, "campaign targeted no errors");
        for threads in [2, 8] {
            let sharded = run_at(&dlx, threads, error_simulation);
            assert_eq!(
                stats_sans_time(&sharded),
                base_stats,
                "stats diverge at num_threads={threads} (error_simulation={error_simulation})"
            );
            assert_eq!(
                report_sans_time(&sharded),
                base_report,
                "table1_report diverges at num_threads={threads} \
                 (error_simulation={error_simulation})"
            );
        }
    }
}

/// Error-class collapsing keeps the thread-count invariance: the worker
/// pool only pre-screens, and the sequential merge replays the exact
/// class covering order.
#[test]
fn collapse_is_thread_invariant() {
    let dlx = DlxModel::new();
    let config_at = |num_threads| CampaignConfig {
        policy: EnumPolicy::AllBits,
        limit: Some(12),
        collapse: true,
        num_threads,
        ..CampaignConfig::default()
    };
    let base = Campaign::run(&dlx, &config_at(1), RunOptions::default()).campaign;
    let base_stats = stats_sans_time(&base);
    let base_report = report_sans_time(&base);
    assert!(
        base_stats.detected_by_simulation > 0,
        "collapsing screened nothing — the test exercises nothing"
    );
    for threads in [2, 8] {
        let sharded = Campaign::run(&dlx, &config_at(threads), RunOptions::default()).campaign;
        assert_eq!(
            stats_sans_time(&sharded),
            base_stats,
            "collapse stats diverge at num_threads={threads}"
        );
        assert_eq!(
            report_sans_time(&sharded),
            base_report,
            "collapse report diverges at num_threads={threads}"
        );
    }
}

/// The pure caches — the `CTRLJUST` memo and the shared-prefix simulation
/// cache — must be invisible in the deterministic report: cached and
/// uncached runs agree byte for byte at every thread count.
#[test]
fn caches_do_not_change_the_deterministic_report() {
    let dlx = DlxModel::new();
    let config_at = |num_threads, cached: bool| {
        let mut c = CampaignConfig {
            limit: Some(16),
            error_simulation: true,
            sim_cache: cached,
            num_threads,
            ..CampaignConfig::default()
        };
        c.tg.ctrljust_memo = cached;
        c
    };
    let reference = Campaign::run(&dlx, &config_at(1, false), RunOptions::default())
        .report
        .to_json_deterministic();
    for threads in [1, 2, 8] {
        let cached = Campaign::run(&dlx, &config_at(threads, true), RunOptions::default())
            .report
            .to_json_deterministic();
        assert_eq!(
            cached, reference,
            "cached deterministic report diverges at num_threads={threads}"
        );
    }
}

/// The fault-parallel (packed) screen must be invisible in the
/// deterministic report: packed and serial screening agree byte for byte
/// at every thread count, with plain error simulation and with class
/// collapsing over a dense `AllBits` population (the case with the most
/// packed lanes per pass).
#[test]
fn packed_screen_does_not_change_the_deterministic_report() {
    let dlx = DlxModel::new();
    let config_at = |num_threads, packed: bool, collapse: bool| CampaignConfig {
        policy: if collapse {
            EnumPolicy::AllBits
        } else {
            EnumPolicy::RepresentativePerBus
        },
        limit: Some(if collapse { 12 } else { 16 }),
        error_simulation: !collapse,
        collapse,
        packed_screen: packed,
        num_threads,
        ..CampaignConfig::default()
    };
    for collapse in [false, true] {
        let reference = Campaign::run(&dlx, &config_at(1, false, collapse), RunOptions::default())
            .report
            .to_json_deterministic();
        for threads in [1, 2, 8] {
            for packed in [false, true] {
                let got = Campaign::run(
                    &dlx,
                    &config_at(threads, packed, collapse),
                    RunOptions::default(),
                )
                .report
                .to_json_deterministic();
                assert_eq!(
                    got, reference,
                    "deterministic report diverges at num_threads={threads} \
                     packed_screen={packed} collapse={collapse}"
                );
            }
        }
    }
}

/// Packed-vs-serial equivalence holds under stress too: chaos-injected
/// panics in the generator plus escalated retry rounds must leave the
/// deterministic report byte-identical with the packed screen on or off,
/// at any thread count.
#[test]
fn packed_screen_is_invariant_under_chaos_and_retries() {
    use hltg::core::{ChaosConfig, RetryPolicy};
    let dlx = DlxModel::new();
    let config_at = |num_threads, packed: bool| CampaignConfig {
        limit: Some(12),
        error_simulation: true,
        packed_screen: packed,
        num_threads,
        retry: RetryPolicy {
            rounds: 1,
            escalate: 2,
        },
        chaos: Some(ChaosConfig {
            seed: 7,
            panic_permille: 200,
            ..ChaosConfig::default()
        }),
        ..CampaignConfig::default()
    };
    let reference = Campaign::run(&dlx, &config_at(1, false), RunOptions::default())
        .report
        .to_json_deterministic();
    for threads in [1, 2, 8] {
        for packed in [false, true] {
            let got = Campaign::run(&dlx, &config_at(threads, packed), RunOptions::default())
                .report
                .to_json_deterministic();
            assert_eq!(
                got, reference,
                "chaos/retry deterministic report diverges at \
                 num_threads={threads} packed_screen={packed}"
            );
        }
    }
}

/// The untestability prover must be invisible to thread scheduling: with
/// `prove_untestable` on, the deterministic report is byte-identical at
/// 1, 2 and 8 threads, certifies a nonzero number of errors, and differs
/// from the (equally thread-invariant) prove-off report only by
/// reclassifying aborted errors — detections are untouched.
#[test]
fn prover_is_thread_invariant() {
    let lite = hltg::build_model("dlx-lite").expect("registered backend");
    let config_at = |num_threads, prove: bool| CampaignConfig {
        limit: Some(67),
        prove_untestable: prove,
        num_threads,
        ..CampaignConfig::default()
    };
    let mut stats_by_mode = Vec::new();
    for prove in [false, true] {
        let base = Campaign::run(lite.as_ref(), &config_at(1, prove), RunOptions::default());
        let reference = base.report.to_json_deterministic();
        for threads in [2, 8] {
            let got = Campaign::run(lite.as_ref(), &config_at(threads, prove), RunOptions::default())
                .report
                .to_json_deterministic();
            assert_eq!(
                got, reference,
                "deterministic report diverges at num_threads={threads} (prove={prove})"
            );
        }
        stats_by_mode.push(base.report.stats);
    }
    let (off, on) = (&stats_by_mode[0], &stats_by_mode[1]);
    assert_eq!(off.proven_untestable, 0, "prover ran despite prove_untestable=false");
    assert!(on.proven_untestable > 0, "the window certified no errors");
    assert_eq!(on.detected, off.detected, "proving must not change detections");
    assert_eq!(
        on.aborted + on.proven_untestable,
        off.aborted,
        "proofs must reclassify aborted errors, not invent outcomes"
    );
}

/// `num_threads: 0` is treated as 1 rather than panicking.
#[test]
fn zero_threads_falls_back_to_serial() {
    let dlx = DlxModel::new();
    let a = run_at(&dlx, 0, false);
    let b = run_at(&dlx, 1, false);
    assert_eq!(stats_sans_time(&a), stats_sans_time(&b));
}
