//! The sharded campaign runner is deterministic: any thread count yields
//! bit-for-bit identical statistics and Table 1 report, with and without
//! error-simulation compaction.

use hltg::core::{Campaign, CampaignConfig, CampaignStats};
use hltg::dlx::DlxDesign;

/// Stats with the wall-clock field zeroed: `seconds` is the only
/// legitimately run-dependent quantity.
fn stats_sans_time(c: &Campaign) -> CampaignStats {
    let mut s = c.stats();
    s.seconds = 0.0;
    s
}

/// The Table 1 report with its timing line removed.
fn report_sans_time(c: &Campaign) -> String {
    c.table1_report()
        .lines()
        .filter(|l| !l.contains("CPU time"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn run_at(dlx: &DlxDesign, num_threads: usize, error_simulation: bool) -> Campaign {
    Campaign::run(
        dlx,
        &CampaignConfig {
            limit: Some(16),
            error_simulation,
            num_threads,
            ..CampaignConfig::default()
        },
    )
}

#[test]
fn thread_count_does_not_change_results() {
    let dlx = DlxDesign::build();
    for error_simulation in [false, true] {
        let base = run_at(&dlx, 1, error_simulation);
        let base_stats = stats_sans_time(&base);
        let base_report = report_sans_time(&base);
        assert!(base_stats.errors > 0, "campaign targeted no errors");
        for threads in [2, 8] {
            let sharded = run_at(&dlx, threads, error_simulation);
            assert_eq!(
                stats_sans_time(&sharded),
                base_stats,
                "stats diverge at num_threads={threads} (error_simulation={error_simulation})"
            );
            assert_eq!(
                report_sans_time(&sharded),
                base_report,
                "table1_report diverges at num_threads={threads} \
                 (error_simulation={error_simulation})"
            );
        }
    }
}

/// `num_threads: 0` is treated as 1 rather than panicking.
#[test]
fn zero_threads_falls_back_to_serial() {
    let dlx = DlxDesign::build();
    let a = run_at(&dlx, 0, false);
    let b = run_at(&dlx, 1, false);
    assert_eq!(stats_sans_time(&a), stats_sans_time(&b));
}
