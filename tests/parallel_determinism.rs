//! The sharded campaign runner is deterministic: any thread count yields
//! bit-for-bit identical statistics and Table 1 report, with and without
//! error-simulation compaction.

use hltg::core::{Campaign, CampaignConfig, CampaignStats, RunOptions};
use hltg::dlx::DlxModel;
use hltg::errors::EnumPolicy;
use hltg::netlist::ProcessorModel;

/// Stats with the wall-clock field zeroed: `seconds` is the only
/// legitimately run-dependent quantity.
fn stats_sans_time(c: &Campaign) -> CampaignStats {
    let mut s = c.stats();
    s.seconds = 0.0;
    s
}

/// The Table 1 report with its timing line removed.
fn report_sans_time(c: &Campaign) -> String {
    c.table1_report()
        .lines()
        .filter(|l| !l.contains("CPU time"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn run_at(model: &dyn ProcessorModel, num_threads: usize, error_simulation: bool) -> Campaign {
    Campaign::run(
        model,
        &CampaignConfig {
            limit: Some(16),
            error_simulation,
            num_threads,
            ..CampaignConfig::default()
        },
        RunOptions::default(),
    )
    .campaign
}

#[test]
fn thread_count_does_not_change_results() {
    let dlx = DlxModel::new();
    for error_simulation in [false, true] {
        let base = run_at(&dlx, 1, error_simulation);
        let base_stats = stats_sans_time(&base);
        let base_report = report_sans_time(&base);
        assert!(base_stats.errors > 0, "campaign targeted no errors");
        for threads in [2, 8] {
            let sharded = run_at(&dlx, threads, error_simulation);
            assert_eq!(
                stats_sans_time(&sharded),
                base_stats,
                "stats diverge at num_threads={threads} (error_simulation={error_simulation})"
            );
            assert_eq!(
                report_sans_time(&sharded),
                base_report,
                "table1_report diverges at num_threads={threads} \
                 (error_simulation={error_simulation})"
            );
        }
    }
}

/// Error-class collapsing keeps the thread-count invariance: the worker
/// pool only pre-screens, and the sequential merge replays the exact
/// class covering order.
#[test]
fn collapse_is_thread_invariant() {
    let dlx = DlxModel::new();
    let config_at = |num_threads| CampaignConfig {
        policy: EnumPolicy::AllBits,
        limit: Some(12),
        collapse: true,
        num_threads,
        ..CampaignConfig::default()
    };
    let base = Campaign::run(&dlx, &config_at(1), RunOptions::default()).campaign;
    let base_stats = stats_sans_time(&base);
    let base_report = report_sans_time(&base);
    assert!(
        base_stats.detected_by_simulation > 0,
        "collapsing screened nothing — the test exercises nothing"
    );
    for threads in [2, 8] {
        let sharded = Campaign::run(&dlx, &config_at(threads), RunOptions::default()).campaign;
        assert_eq!(
            stats_sans_time(&sharded),
            base_stats,
            "collapse stats diverge at num_threads={threads}"
        );
        assert_eq!(
            report_sans_time(&sharded),
            base_report,
            "collapse report diverges at num_threads={threads}"
        );
    }
}

/// The pure caches — the `CTRLJUST` memo and the shared-prefix simulation
/// cache — must be invisible in the deterministic report: cached and
/// uncached runs agree byte for byte at every thread count.
#[test]
fn caches_do_not_change_the_deterministic_report() {
    let dlx = DlxModel::new();
    let config_at = |num_threads, cached: bool| {
        let mut c = CampaignConfig {
            limit: Some(16),
            error_simulation: true,
            sim_cache: cached,
            num_threads,
            ..CampaignConfig::default()
        };
        c.tg.ctrljust_memo = cached;
        c
    };
    let reference = Campaign::run(&dlx, &config_at(1, false), RunOptions::default())
        .report
        .to_json_deterministic();
    for threads in [1, 2, 8] {
        let cached = Campaign::run(&dlx, &config_at(threads, true), RunOptions::default())
            .report
            .to_json_deterministic();
        assert_eq!(
            cached, reference,
            "cached deterministic report diverges at num_threads={threads}"
        );
    }
}

/// `num_threads: 0` is treated as 1 rather than panicking.
#[test]
fn zero_threads_falls_back_to_serial() {
    let dlx = DlxModel::new();
    let a = run_at(&dlx, 0, false);
    let b = run_at(&dlx, 1, false);
    assert_eq!(stats_sans_time(&a), stats_sans_time(&b));
}
