//! Robustness and failure-injection tests: starved budgets, degenerate
//! configurations and the extended error models must degrade gracefully —
//! clean aborts, never panics or bogus detections.

use hltg::core::ctrljust::CtrlJustConfig;
use hltg::core::dptrace::DptraceConfig;
use hltg::core::{
    AbortReason, Campaign, CampaignConfig, CampaignStats, ChaosConfig, Outcome, Phase,
    RunOptions, TestGenerator, TgConfig,
};
use hltg::build_model;
use hltg::dlx::{DlxDesign, DlxModel};
use hltg::errors::{
    enumerate_bus_order_errors, enumerate_module_substitutions, enumerate_stage_errors,
    EnumPolicy,
};
use hltg::isa::asm::assemble;
use hltg::netlist::{ProcessorModel, Stage};
use hltg::sim::{ErrorModel, Machine, Schedule};
use std::time::Duration;

fn stages() -> [Stage; 3] {
    [Stage::new(2), Stage::new(3), Stage::new(4)]
}

/// Stats with the wall-clock field zeroed: `seconds` is the only
/// legitimately run-dependent quantity.
fn stats_sans_time(c: &Campaign) -> CampaignStats {
    let mut s = c.stats();
    s.seconds = 0.0;
    s
}

/// The Table 1 report with its timing line removed.
fn report_sans_time(c: &Campaign) -> String {
    c.table1_report()
        .lines()
        .filter(|l| !l.contains("CPU time"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// A unique temp path for checkpoint files (tests run concurrently).
fn temp_checkpoint(name: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("hltg_robustness_{name}.jsonl"));
    let _ = std::fs::remove_file(&path);
    path
}

/// Starved search budgets abort cleanly and never claim detection without
/// a confirming divergence.
#[test]
fn starved_budgets_abort_cleanly() {
    let dlx = DlxModel::new();
    let cfg = TgConfig {
        max_variants: 1,
        relax_iters: 1,
        ctrljust: CtrlJustConfig { max_backtracks: 1 },
        dptrace: DptraceConfig {
            max_time: 2,
            min_time: -2,
            max_depth: 8,
        },
        ..TgConfig::default()
    };
    let mut tg = TestGenerator::new(&dlx, cfg);
    let errors = enumerate_stage_errors(dlx.design(), &stages(), EnumPolicy::RepresentativePerBus);
    let mut aborted = 0;
    for e in errors.iter().take(20) {
        match tg.generate(e) {
            Outcome::Detected(tc) => {
                // A detection under starvation must still be real.
                assert!(tc.detected_cycle < tc.program.len() + 32);
            }
            Outcome::Aborted { .. } => aborted += 1,
            // The prover only runs under campaign flags, never in raw tg.
            Outcome::ProvenUntestable(_) => unreachable!("tg::generate never proves"),
        }
    }
    assert!(aborted > 0, "starved budgets must abort at least sometimes");
}

/// A zero-error campaign produces empty but well-formed statistics.
#[test]
fn empty_campaign_is_well_formed() {
    let dlx = DlxModel::new();
    let campaign = Campaign::run(
        &dlx,
        &CampaignConfig {
            limit: Some(0),
            ..CampaignConfig::default()
        },
        RunOptions::default(),
    )
    .campaign;
    let stats = campaign.stats();
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.coverage_pct(), 0.0);
    assert!(campaign.table1_report().contains("this run"));
}

/// Every extended-model error either diverges from the good machine or
/// behaves identically — and the dual run itself never panics, for every
/// enumerated instance.
#[test]
fn extended_models_simulate_safely() {
    let dlx = DlxDesign::build();
    let program = assemble(
        0,
        "
        addi r1, r0, 0x29a
        lhi  r2, 0x8000
        add  r3, r1, r2
        sll  r4, r1, r1
        sw   r3, 0x100(r0)
        lw   r5, 0x100(r0)
        sub  r6, r5, r1
        sw   r6, 0x104(r0)
        ",
    )
    .unwrap();
    let schedule = Schedule::build(&dlx.design).unwrap();
    let mut models = enumerate_bus_order_errors(&dlx.design, &stages());
    models.extend(enumerate_module_substitutions(&dlx.design, &stages()));
    let mut divergent = 0;
    for e in &models {
        let mut good = Machine::with_schedule(&dlx.design, schedule.clone());
        let mut bad = Machine::with_schedule(&dlx.design, schedule.clone());
        bad.set_error(Some(*e));
        for m in [&mut good, &mut bad] {
            for (i, w) in program.encode().iter().enumerate() {
                m.preload_mem(dlx.dp.imem, i as u64, u64::from(*w));
            }
        }
        let diverged = (0..40).any(|_| good.step() != bad.step());
        if diverged {
            divergent += 1;
        }
    }
    // A single short program only exercises a slice of the machine; the
    // full cross-coverage experiment lives in the `ext_error_models`
    // binary. Here the point is safety plus a sanity floor.
    assert!(
        divergent * 5 >= models.len() / 2,
        "{divergent}/{} extended errors detected",
        models.len()
    );
}

/// A `ModuleSubstitution` that replaces an op with itself is behaviourally
/// silent — the injection machinery adds no spurious effects.
#[test]
fn identity_substitution_is_silent() {
    let dlx = DlxDesign::build();
    let (alu_add_mod, op) = dlx
        .design
        .dp
        .iter_modules()
        .find(|(_, m)| m.name == "alu_add")
        .map(|(id, m)| (id, m.op))
        .expect("alu adder exists");
    let program = assemble(0, "addi r1, r0, 7\nadd r2, r1, r1\nsw r2, 0x40(r0)").unwrap();
    let schedule = Schedule::build(&dlx.design).unwrap();
    let mut good = Machine::with_schedule(&dlx.design, schedule.clone());
    let mut bad = Machine::with_schedule(&dlx.design, schedule);
    bad.set_error(Some(ErrorModel::ModuleSubstitution {
        module: alu_add_mod,
        with: op,
    }));
    for m in [&mut good, &mut bad] {
        for (i, w) in program.encode().iter().enumerate() {
            m.preload_mem(dlx.dp.imem, i as u64, u64::from(*w));
        }
    }
    for _ in 0..24 {
        assert_eq!(good.step(), bad.step());
    }
}

/// Chaos-injected panics — in every engine phase, targeted or not — are
/// isolated into `Aborted` records: the campaign completes, every error
/// is accounted for, no worker dies uncounted, and the statistics are
/// byte-identical across thread counts.
#[test]
fn chaos_panics_are_isolated_and_deterministic() {
    let dlx = DlxModel::new();
    let phases = [
        None,
        Some(Phase::Dptrace),
        Some(Phase::Ctrljust),
        Some(Phase::Dprelax),
    ];
    for phase in phases {
        let config_at = |num_threads: usize| CampaignConfig {
            limit: Some(10),
            num_threads,
            chaos: Some(ChaosConfig {
                seed: 0xDEAD_BEEF,
                panic_permille: 500,
                phase,
                ..ChaosConfig::default()
            }),
            ..CampaignConfig::default()
        };
        // Through the full observed path: counters and report survive
        // chaos too.
        let run = Campaign::run(&dlx, &config_at(1), RunOptions::default());
        assert_eq!(run.report.stats.errors, 10);
        let serial = run.campaign;
        let stats = serial.stats();
        assert_eq!(serial.records.len(), 10, "campaign must complete ({phase:?})");
        assert_eq!(
            stats.detected + stats.aborted,
            stats.errors,
            "every error accounted ({phase:?})"
        );
        assert!(
            stats.aborted_panicked >= 1,
            "injection rate 50% must panic somewhere ({phase:?})"
        );
        // Panic records carry the phase they unwound from.
        for r in &serial.records {
            if let Outcome::Aborted {
                reason: AbortReason::Panicked { phase: at, payload },
                ..
            } = &r.outcome
            {
                assert!(payload.starts_with("chaos("), "payload: {payload}");
                if let Some(want) = phase {
                    assert_eq!(*at, want.name(), "panic attributed to the injected phase");
                }
            }
        }
        let sharded = Campaign::run(&dlx, &config_at(4), RunOptions::default()).campaign;
        assert_eq!(
            stats_sans_time(&sharded),
            stats_sans_time(&serial),
            "chaos stats diverge between 1 and 4 threads ({phase:?})"
        );
        assert_eq!(
            report_sans_time(&sharded),
            report_sans_time(&serial),
            "chaos report diverges between 1 and 4 threads ({phase:?})"
        );
    }
}

/// Stage targeting: chaos aimed at a stage with no enumerated errors is
/// vacuous — the campaign equals a clean run — while chaos aimed at a
/// populated stage injects.
#[test]
fn chaos_stage_targeting_is_respected() {
    let dlx = DlxModel::new();
    let base = CampaignConfig {
        limit: Some(8),
        num_threads: 1,
        ..CampaignConfig::default()
    };
    let clean = Campaign::run(&dlx, &base, RunOptions::default()).campaign;
    let populated_stage = clean.records[0].error.stage.index();
    let hit = Campaign::run(
        &dlx,
        &CampaignConfig {
            chaos: Some(ChaosConfig {
                panic_permille: 1000,
                stage: Some(populated_stage),
                ..ChaosConfig::default()
            }),
            ..base.clone()
        },
        RunOptions::default(),
    )
    .campaign;
    assert!(hit.stats().aborted_panicked >= 1);
    let vacuous = Campaign::run(
        &dlx,
        &CampaignConfig {
            chaos: Some(ChaosConfig {
                panic_permille: 1000,
                stage: Some(99),
                ..ChaosConfig::default()
            }),
            ..base.clone()
        },
        RunOptions::default(),
    )
    .campaign;
    assert_eq!(stats_sans_time(&vacuous), stats_sans_time(&clean));
}

/// Chaos spurious backtracks waste CTRLJUST work but never corrupt an
/// outcome: detections stay confirmed and the campaign stays
/// thread-count deterministic.
#[test]
fn chaos_spurious_backtracks_stay_sound() {
    let dlx = DlxModel::new();
    let config_at = |num_threads: usize| CampaignConfig {
        limit: Some(8),
        num_threads,
        chaos: Some(ChaosConfig {
            spurious_backtrack_permille: 200,
            ..ChaosConfig::default()
        }),
        ..CampaignConfig::default()
    };
    let serial = Campaign::run(&dlx, &config_at(1), RunOptions::default()).campaign;
    let stats = serial.stats();
    assert_eq!(stats.detected + stats.aborted, stats.errors);
    for r in &serial.records {
        if let Outcome::Detected(tc) = &r.outcome {
            assert!(tc.detected_cycle < tc.program.len() + 32);
        }
    }
    let sharded = Campaign::run(&dlx, &config_at(4), RunOptions::default()).campaign;
    assert_eq!(stats_sans_time(&sharded), stats_sans_time(&serial));
}

/// Retry-with-escalation recovers errors whose first attempt was killed
/// by an injected panic: `first_attempt_only` chaos panics every error
/// once, the escalated round runs clean, and the final statistics show
/// the recovery (and stay thread-count deterministic).
#[test]
fn retry_recovers_panicked_errors() {
    let dlx = DlxModel::new();
    let config_at = |num_threads: usize| {
        let mut config = CampaignConfig {
            limit: Some(6),
            num_threads,
            chaos: Some(ChaosConfig {
                panic_permille: 1000,
                phase: Some(Phase::Dptrace),
                first_attempt_only: true,
                ..ChaosConfig::default()
            }),
            ..CampaignConfig::default()
        };
        config.retry.rounds = 1;
        config
    };
    let campaign = Campaign::run(&dlx, &config_at(1), RunOptions::default()).campaign;
    let stats = campaign.stats();
    assert_eq!(stats.detected + stats.aborted, stats.errors);
    assert!(
        stats.detected_after_retry >= 1,
        "retry must recover panicked errors: {stats:?}"
    );
    assert_eq!(
        stats.aborted_panicked, 0,
        "the clean retry round replaces every panic record: {stats:?}"
    );
    for r in &campaign.records {
        if r.outcome.is_detected() && !r.by_simulation {
            assert_eq!(r.round, 1, "recovered records are tagged with their round");
        }
    }
    let sharded = Campaign::run(&dlx, &config_at(4), RunOptions::default()).campaign;
    assert_eq!(stats_sans_time(&sharded), stats_sans_time(&campaign));
}

/// The deterministic step budget aborts with a phase-attributed reason at
/// byte-identical points for every thread count, and never fabricates a
/// detection.
#[test]
fn step_budget_aborts_deterministically() {
    let dlx = DlxModel::new();
    let config_at = |num_threads: usize| {
        let mut config = CampaignConfig {
            limit: Some(10),
            num_threads,
            ..CampaignConfig::default()
        };
        config.tg.max_steps = Some(40);
        config
    };
    let serial = Campaign::run(&dlx, &config_at(1), RunOptions::default()).campaign;
    let stats = serial.stats();
    assert_eq!(stats.detected + stats.aborted, stats.errors);
    assert!(
        stats.aborted_step_budget >= 1,
        "a 40-step budget must starve some error: {stats:?}"
    );
    for r in &serial.records {
        if let Outcome::Aborted {
            reason: AbortReason::StepBudget { .. },
            ..
        } = &r.outcome
        {
            continue;
        }
        if let Outcome::Detected(tc) = &r.outcome {
            assert!(tc.detected_cycle < tc.program.len() + 32);
        }
    }
    for threads in [4, 8] {
        let sharded = Campaign::run(&dlx, &config_at(threads), RunOptions::default()).campaign;
        assert_eq!(
            stats_sans_time(&sharded),
            stats_sans_time(&serial),
            "step-budget abort points diverge at num_threads={threads}"
        );
        assert_eq!(report_sans_time(&sharded), report_sans_time(&serial));
    }
}

/// Checkpoint/resume: a short run's checkpoint seeds a longer one, and
/// the resumed campaign reproduces the uninterrupted report — including,
/// on a full resume, the recorded CPU time, byte for byte.
#[test]
fn checkpoint_resume_reproduces_the_report() {
    let dlx = DlxModel::new();
    let path = temp_checkpoint("resume");
    let config = |limit: usize, checkpoint: bool, num_threads: usize| CampaignConfig {
        limit: Some(limit),
        num_threads,
        checkpoint: checkpoint.then(|| path.clone()),
        ..CampaignConfig::default()
    };
    // An uninterrupted reference run, no persistence.
    let uninterrupted = Campaign::run(&dlx, &config(12, false, 1), RunOptions::default()).campaign;
    // A "killed midway" run: only the first half completes.
    let partial = Campaign::run(&dlx, &config(6, true, 1), RunOptions::default()).campaign;
    assert_eq!(partial.records.len(), 6);
    // Resuming finishes the remaining errors and reproduces the report.
    let resumed = Campaign::run(&dlx, &config(12, true, 1), RunOptions::default()).campaign;
    assert_eq!(stats_sans_time(&resumed), stats_sans_time(&uninterrupted));
    assert_eq!(report_sans_time(&resumed), report_sans_time(&uninterrupted));
    // A full resume restores every record — the report matches the run
    // that wrote the checkpoint byte for byte, CPU time included, for
    // any thread count.
    for threads in [1, 4] {
        let replayed = Campaign::run(&dlx, &config(12, true, threads), RunOptions::default()).campaign;
        assert_eq!(replayed.table1_report(), resumed.table1_report());
        assert_eq!(stats_sans_time(&replayed), stats_sans_time(&resumed));
    }
    let _ = std::fs::remove_file(&path);
}

/// Checkpoint entries persist the per-generation *counter deltas*, and a
/// resume replays them: after a partial run plus a resumed completion,
/// the counter totals and per-phase call counts equal an uninterrupted
/// run's, exactly. Phase *seconds* are wall-clock and excluded — they
/// replay the partial run's measurements, not the reference run's. The
/// `CTRLJUST` memo is disabled because its hit pattern depends on which
/// errors were generated (vs replayed) by one generator instance.
#[test]
fn checkpoint_resume_replays_counter_totals() {
    let dlx = DlxModel::new();
    let path = temp_checkpoint("counter_replay");
    let config = |limit: usize, checkpoint: bool| {
        let mut config = CampaignConfig {
            limit: Some(limit),
            num_threads: 1,
            checkpoint: checkpoint.then(|| path.clone()),
            ..CampaignConfig::default()
        };
        config.tg.ctrljust_memo = false;
        config
    };
    let uninterrupted = Campaign::run(&dlx, &config(12, false), RunOptions::default());
    // A "killed midway" run persists deltas for the first half...
    let partial = Campaign::run(&dlx, &config(6, true), RunOptions::default());
    assert_eq!(partial.campaign.records.len(), 6);
    // ...and the resumed run replays them while generating the rest.
    let resumed = Campaign::run(&dlx, &config(12, true), RunOptions::default());
    assert_eq!(
        stats_sans_time(&resumed.campaign),
        stats_sans_time(&uninterrupted.campaign)
    );
    assert_eq!(
        resumed.report.counters.counts, uninterrupted.report.counters.counts,
        "replayed counter totals must equal the uninterrupted run's"
    );
    let phase_calls = |counters: &hltg::core::instrument::CounterSnapshot| {
        counters
            .phases
            .iter()
            .map(|p| (p.name, p.calls))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        phase_calls(&resumed.report.counters),
        phase_calls(&uninterrupted.report.counters),
        "replayed per-phase call counts must equal the uninterrupted run's"
    );
    // Sanity: the campaign did real work that the replay had to carry.
    assert!(resumed.report.counters.count("variants") > 0);
    let _ = std::fs::remove_file(&path);
}

/// Certified untestability proofs persist: a checkpointed campaign's
/// `proven_untestable` entries survive the kill/resume round trip. The
/// resumed run restores certificates bit for bit from the file (through
/// the JSONL serialization), and a full replay reproduces the counter
/// totals exactly — the prover deltas replay with their entries, and
/// nothing is re-proven on top of them.
#[test]
fn checkpoint_resume_preserves_proofs() {
    let lite = build_model("dlx-lite").expect("registered backend");
    let path = temp_checkpoint("proofs");
    let config = |limit: usize, checkpoint: bool| {
        let mut config = CampaignConfig {
            limit: Some(limit),
            num_threads: 1,
            prove_untestable: true,
            checkpoint: checkpoint.then(|| path.clone()),
            ..CampaignConfig::default()
        };
        // Counter totals are compared below; the memo's hit pattern
        // depends on which errors were generated vs replayed.
        config.tg.ctrljust_memo = false;
        config
    };
    let proofs = |c: &Campaign| {
        c.records
            .iter()
            .filter_map(|r| match &r.outcome {
                Outcome::ProvenUntestable(p) => Some((r.error.id, (**p).clone())),
                _ => None,
            })
            .collect::<Vec<_>>()
    };
    // An uninterrupted reference run, no persistence.
    let uninterrupted = Campaign::run(lite.as_ref(), &config(67, false), RunOptions::default());
    assert!(
        uninterrupted.report.stats.proven_untestable >= 2,
        "the window must certify enough errors to exercise the round trip: {:?}",
        uninterrupted.report.stats
    );
    // A "killed midway" run whose persisted prefix already holds proofs...
    let partial = Campaign::run(lite.as_ref(), &config(60, true), RunOptions::default());
    assert!(
        partial.report.stats.proven_untestable >= 1,
        "the partial run must persist at least one proof"
    );
    // ...resumed to completion: stats match the uninterrupted reference
    // and every certificate — restored or freshly proven — is identical.
    let resumed = Campaign::run(lite.as_ref(), &config(67, true), RunOptions::default());
    assert_eq!(
        stats_sans_time(&resumed.campaign),
        stats_sans_time(&uninterrupted.campaign)
    );
    assert_eq!(
        proofs(&resumed.campaign),
        proofs(&uninterrupted.campaign),
        "restored certificates must equal the uninterrupted run's bit for bit"
    );
    // A full replay regenerates nothing: the proofs round-trip through
    // the JSONL file once more, and the counter totals — prover counters
    // included — replay exactly. Re-proving would inflate them.
    let replayed = Campaign::run(lite.as_ref(), &config(67, true), RunOptions::default());
    assert_eq!(proofs(&replayed.campaign), proofs(&resumed.campaign));
    assert_eq!(
        replayed.report.counters.counts, resumed.report.counters.counts,
        "a full replay must reproduce the counter totals without re-proving"
    );
    assert!(
        replayed.report.counters.count("prover_calls") > 0,
        "the replayed totals must still carry the recorded prover work"
    );
    let _ = std::fs::remove_file(&path);
}

/// A checkpoint written under a different configuration is refused, not
/// silently mixed in: the campaign warns, runs without persistence, and
/// produces the same results as an unpersisted run.
#[test]
fn mismatched_checkpoint_is_refused_not_mixed() {
    let dlx = DlxModel::new();
    let path = temp_checkpoint("mismatch");
    let mut starved = CampaignConfig {
        limit: Some(4),
        num_threads: 1,
        checkpoint: Some(path.clone()),
        ..CampaignConfig::default()
    };
    starved.tg.max_steps = Some(40);
    let _ = Campaign::run(&dlx, &starved, RunOptions::default()).campaign;
    // Same path, different generator configuration: must not resume.
    let clean_cfg = CampaignConfig {
        limit: Some(4),
        num_threads: 1,
        checkpoint: Some(path.clone()),
        ..CampaignConfig::default()
    };
    let unpersisted = CampaignConfig {
        checkpoint: None,
        ..clean_cfg.clone()
    };
    let a = Campaign::run(&dlx, &clean_cfg, RunOptions::default()).campaign;
    let b = Campaign::run(&dlx, &unpersisted, RunOptions::default()).campaign;
    assert_eq!(stats_sans_time(&a), stats_sans_time(&b));
    let _ = std::fs::remove_file(&path);
}

/// The wall-clock soft deadline only reschedules work — an immediately
/// expired deadline forces the merge pass to generate everything, with
/// outcomes identical to an undeadlined run.
#[test]
fn soft_deadline_never_changes_outcomes() {
    let dlx = DlxModel::new();
    let base = CampaignConfig {
        limit: Some(8),
        num_threads: 4,
        ..CampaignConfig::default()
    };
    let plain = Campaign::run(&dlx, &base, RunOptions::default()).campaign;
    let deadlined = Campaign::run(
        &dlx,
        &CampaignConfig {
            soft_deadline: Some(Duration::ZERO),
            ..base.clone()
        },
        RunOptions::default(),
    )
    .campaign;
    assert_eq!(stats_sans_time(&deadlined), stats_sans_time(&plain));
    assert_eq!(report_sans_time(&deadlined), report_sans_time(&plain));
}

/// Regenerating a test for the same error is deterministic: two fresh
/// generators produce identical programs and images.
#[test]
fn generation_is_deterministic() {
    let dlx = DlxModel::new();
    let errors = enumerate_stage_errors(dlx.design(), &stages(), EnumPolicy::RepresentativePerBus);
    for e in errors.iter().take(6) {
        let a = TestGenerator::new(&dlx, TgConfig::default()).generate(e);
        let b = TestGenerator::new(&dlx, TgConfig::default()).generate(e);
        match (a, b) {
            (Outcome::Detected(x), Outcome::Detected(y)) => {
                assert_eq!(x.imem_image, y.imem_image, "{e}");
                assert_eq!(x.dmem_image, y.dmem_image, "{e}");
                assert_eq!(x.detected_cycle, y.detected_cycle, "{e}");
            }
            (Outcome::Aborted { reason: ra, .. }, Outcome::Aborted { reason: rb, .. }) => {
                assert_eq!(ra, rb, "{e}");
            }
            _ => panic!("{e}: outcome differs between identical runs"),
        }
    }
}
