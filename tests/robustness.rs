//! Robustness and failure-injection tests: starved budgets, degenerate
//! configurations and the extended error models must degrade gracefully —
//! clean aborts, never panics or bogus detections.

use hltg::core::ctrljust::CtrlJustConfig;
use hltg::core::dptrace::DptraceConfig;
use hltg::core::{Campaign, CampaignConfig, Outcome, TestGenerator, TgConfig};
use hltg::dlx::DlxDesign;
use hltg::errors::{
    enumerate_bus_order_errors, enumerate_module_substitutions, enumerate_stage_errors,
    EnumPolicy,
};
use hltg::isa::asm::assemble;
use hltg::netlist::Stage;
use hltg::sim::{ErrorModel, Machine, Schedule};

fn stages() -> [Stage; 3] {
    [Stage::new(2), Stage::new(3), Stage::new(4)]
}

/// Starved search budgets abort cleanly and never claim detection without
/// a confirming divergence.
#[test]
fn starved_budgets_abort_cleanly() {
    let dlx = DlxDesign::build();
    let cfg = TgConfig {
        max_variants: 1,
        relax_iters: 1,
        ctrljust: CtrlJustConfig { max_backtracks: 1 },
        dptrace: DptraceConfig {
            max_time: 2,
            min_time: -2,
            max_depth: 8,
        },
        ..TgConfig::default()
    };
    let mut tg = TestGenerator::new(&dlx, cfg);
    let errors = enumerate_stage_errors(&dlx.design, &stages(), EnumPolicy::RepresentativePerBus);
    let mut aborted = 0;
    for e in errors.iter().take(20) {
        match tg.generate(e) {
            Outcome::Detected(tc) => {
                // A detection under starvation must still be real.
                assert!(tc.detected_cycle < tc.program.len() + 32);
            }
            Outcome::Aborted { .. } => aborted += 1,
        }
    }
    assert!(aborted > 0, "starved budgets must abort at least sometimes");
}

/// A zero-error campaign produces empty but well-formed statistics.
#[test]
fn empty_campaign_is_well_formed() {
    let dlx = DlxDesign::build();
    let campaign = Campaign::run(
        &dlx,
        &CampaignConfig {
            limit: Some(0),
            ..CampaignConfig::default()
        },
    );
    let stats = campaign.stats();
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.coverage_pct(), 0.0);
    assert!(campaign.table1_report().contains("this run"));
}

/// Every extended-model error either diverges from the good machine or
/// behaves identically — and the dual run itself never panics, for every
/// enumerated instance.
#[test]
fn extended_models_simulate_safely() {
    let dlx = DlxDesign::build();
    let program = assemble(
        0,
        "
        addi r1, r0, 0x29a
        lhi  r2, 0x8000
        add  r3, r1, r2
        sll  r4, r1, r1
        sw   r3, 0x100(r0)
        lw   r5, 0x100(r0)
        sub  r6, r5, r1
        sw   r6, 0x104(r0)
        ",
    )
    .unwrap();
    let schedule = Schedule::build(&dlx.design).unwrap();
    let mut models = enumerate_bus_order_errors(&dlx.design, &stages());
    models.extend(enumerate_module_substitutions(&dlx.design, &stages()));
    let mut divergent = 0;
    for e in &models {
        let mut good = Machine::with_schedule(&dlx.design, schedule.clone());
        let mut bad = Machine::with_schedule(&dlx.design, schedule.clone());
        bad.set_error(Some(*e));
        for m in [&mut good, &mut bad] {
            for (i, w) in program.encode().iter().enumerate() {
                m.preload_mem(dlx.dp.imem, i as u64, u64::from(*w));
            }
        }
        let diverged = (0..40).any(|_| good.step() != bad.step());
        if diverged {
            divergent += 1;
        }
    }
    // A single short program only exercises a slice of the machine; the
    // full cross-coverage experiment lives in the `ext_error_models`
    // binary. Here the point is safety plus a sanity floor.
    assert!(
        divergent * 5 >= models.len() / 2,
        "{divergent}/{} extended errors detected",
        models.len()
    );
}

/// A `ModuleSubstitution` that replaces an op with itself is behaviourally
/// silent — the injection machinery adds no spurious effects.
#[test]
fn identity_substitution_is_silent() {
    let dlx = DlxDesign::build();
    let (alu_add_mod, op) = dlx
        .design
        .dp
        .iter_modules()
        .find(|(_, m)| m.name == "alu_add")
        .map(|(id, m)| (id, m.op))
        .expect("alu adder exists");
    let program = assemble(0, "addi r1, r0, 7\nadd r2, r1, r1\nsw r2, 0x40(r0)").unwrap();
    let schedule = Schedule::build(&dlx.design).unwrap();
    let mut good = Machine::with_schedule(&dlx.design, schedule.clone());
    let mut bad = Machine::with_schedule(&dlx.design, schedule);
    bad.set_error(Some(ErrorModel::ModuleSubstitution {
        module: alu_add_mod,
        with: op,
    }));
    for m in [&mut good, &mut bad] {
        for (i, w) in program.encode().iter().enumerate() {
            m.preload_mem(dlx.dp.imem, i as u64, u64::from(*w));
        }
    }
    for _ in 0..24 {
        assert_eq!(good.step(), bad.step());
    }
}

/// Regenerating a test for the same error is deterministic: two fresh
/// generators produce identical programs and images.
#[test]
fn generation_is_deterministic() {
    let dlx = DlxDesign::build();
    let errors = enumerate_stage_errors(&dlx.design, &stages(), EnumPolicy::RepresentativePerBus);
    for e in errors.iter().take(6) {
        let a = TestGenerator::new(&dlx, TgConfig::default()).generate(e);
        let b = TestGenerator::new(&dlx, TgConfig::default()).generate(e);
        match (a, b) {
            (Outcome::Detected(x), Outcome::Detected(y)) => {
                assert_eq!(x.imem_image, y.imem_image, "{e}");
                assert_eq!(x.dmem_image, y.dmem_image, "{e}");
                assert_eq!(x.detected_cycle, y.detected_cycle, "{e}");
            }
            (Outcome::Aborted { reason: ra, .. }, Outcome::Aborted { reason: rb, .. }) => {
                assert_eq!(ra, rb, "{e}");
            }
            _ => panic!("{e}: outcome differs between identical runs"),
        }
    }
}
