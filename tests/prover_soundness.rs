//! Soundness suite for the untestability prover (DESIGN.md §6h): every
//! certificate a campaign emits must (a) re-check against the design
//! from scratch, (b) survive exhaustive dual simulation — no generated
//! test may expose a certified error — and (c) never consume an
//! escalated retry slot.

use hltg::core::tg::Outcome;
use hltg::core::{Campaign, CampaignConfig, RetryPolicy, RunOptions};
use hltg::build_model;
use hltg::sim::{Machine, Schedule};

#[test]
fn certified_proofs_are_sound_on_dlx_lite() {
    let model = build_model("dlx-lite").expect("registered backend");
    let rounds = 2;
    let run = Campaign::run(
        model.as_ref(),
        &CampaignConfig {
            prove_untestable: true,
            retry: RetryPolicy {
                rounds,
                escalate: 2,
            },
            ..CampaignConfig::default()
        },
        RunOptions::default(),
    );
    let campaign = run.campaign;
    let design = model.design();

    let proven: Vec<_> = campaign
        .records
        .iter()
        .filter_map(|r| match &r.outcome {
            Outcome::ProvenUntestable(proof) => Some((r, proof)),
            _ => None,
        })
        .collect();
    assert!(
        !proven.is_empty(),
        "the full dlx-lite campaign certified nothing — the suite exercises nothing"
    );
    assert_eq!(
        campaign.stats().proven_untestable,
        proven.len(),
        "stats disagree with the records"
    );

    // (a) Every certificate re-derives: a proof that does not check must
    // never be trusted, and proofs only come from the main pass.
    for (r, proof) in &proven {
        assert!(
            proof.check(design, &r.error),
            "certificate fails re-check: {}",
            r.error
        );
        assert_eq!(r.round, 0, "a proven error entered a retry round: {}", r.error);
    }

    // (b) Exhaustive dual simulation: replay every generated test against
    // every certified error over the screening horizon. A single
    // divergence refutes the certificate.
    let schedule = Schedule::build(design).expect("levelizes");
    let pipe = model.pipeline();
    let tests: Vec<_> = campaign
        .records
        .iter()
        .filter_map(|r| match &r.outcome {
            Outcome::Detected(tc) => Some(tc),
            _ => None,
        })
        .collect();
    assert!(!tests.is_empty(), "no tests to grade the certificates against");
    for (r, _) in &proven {
        for tc in &tests {
            let mut good = Machine::with_schedule(design, schedule.clone());
            let mut bad = Machine::with_schedule(design, schedule.clone());
            bad.set_injection(Some(r.error.to_injection()));
            for m in [&mut good, &mut bad] {
                for &(addr, word) in &tc.imem_image {
                    m.preload_mem(pipe.imem, addr, u64::from(word));
                }
                for &(addr, value) in &tc.dmem_image {
                    m.preload_mem(pipe.dmem, addr, value);
                }
            }
            let horizon = tc.program.len() as u64 + 16;
            assert!(
                (0..horizon).all(|_| good.step() == bad.step()),
                "a generated test detects the certified-untestable error {}",
                r.error
            );
        }
    }

    // (c) No proven error consumed a retry slot. Reconstruct the exact
    // number of escalated attempts the retry rounds owed: an error that
    // recovered in round r failed rounds 1..r first (r attempts); an
    // error still aborted after the last round consumed every round.
    // Proven errors owe zero — if one leaked into the retry loop the
    // counter would exceed this sum.
    let owed: u64 = campaign
        .records
        .iter()
        .map(|r| match &r.outcome {
            Outcome::Detected(_) => u64::from(r.round),
            Outcome::Aborted { .. } if !r.redundant => u64::from(rounds),
            _ => 0,
        })
        .sum();
    assert_eq!(
        run.report.counters.count("retry_attempts"),
        owed,
        "retry attempts disagree with the records — a proven or redundant \
         error consumed a retry slot"
    );
    assert_eq!(
        run.report.counters.count("prover_proofs") as usize,
        proven.len(),
        "prover_proofs counter disagrees with the certified records"
    );
}
