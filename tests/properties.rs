//! Property-based integration tests (proptest) across the workspace.

use hltg::dlx::{runner, DlxDesign};
use hltg::isa::asm::Program;
use hltg::isa::ref_sim::ArchSim;
use hltg::isa::{Instr, Opcode, Reg};
use proptest::prelude::*;
use std::sync::OnceLock;

/// The DLX is expensive to build; share one instance across cases.
fn dlx() -> &'static DlxDesign {
    static DLX: OnceLock<DlxDesign> = OnceLock::new();
    DLX.get_or_init(DlxDesign::build)
}

/// Strategy: one random architected instruction over a small register
/// window, with loads/stores confined to an aligned scratch region and
/// only forward branches (no unbounded loops).
fn arb_instr(remaining: usize) -> impl Strategy<Value = Instr> {
    let reg = || (0u8..8).prop_map(Reg);
    let rtype = (reg(), reg(), reg(), 0usize..14).prop_map(|(rd, rs1, rs2, k)| {
        let ops = [
            Opcode::Add,
            Opcode::Sub,
            Opcode::And,
            Opcode::Or,
            Opcode::Xor,
            Opcode::Sll,
            Opcode::Srl,
            Opcode::Sra,
            Opcode::Slt,
            Opcode::Sgt,
            Opcode::Sle,
            Opcode::Sge,
            Opcode::Seq,
            Opcode::Sne,
        ];
        Instr {
            op: ops[k],
            rd,
            rs1,
            rs2,
            imm: 0,
        }
    });
    let itype = (reg(), reg(), -200i32..200, 0usize..7).prop_map(|(rd, rs1, imm, k)| {
        let ops = [
            Opcode::Addi,
            Opcode::Subi,
            Opcode::Andi,
            Opcode::Ori,
            Opcode::Xori,
            Opcode::Slti,
            Opcode::Snei,
        ];
        let imm = if ops[k].imm_is_signed() { imm } else { imm.abs() };
        Instr {
            op: ops[k],
            rd,
            rs1,
            rs2: Reg(0),
            imm,
        }
    });
    let lhi = (reg(), 0i32..0x1_0000).prop_map(|(rd, imm)| Instr::lhi(rd, imm));
    let mem = (reg(), 0u32..16, prop::bool::ANY).prop_map(|(r, slot, load)| {
        let addr = 0x200 + 4 * slot as i32;
        if load {
            Instr::lw(r, Reg(0), addr)
        } else {
            Instr::sw(Reg(0), addr, r)
        }
    });
    let max_skip = remaining.saturating_sub(1).min(3) as i32;
    let branch = (reg(), 1i32..=1.max(max_skip), prop::bool::ANY).prop_map(|(r, skip, eq)| {
        if eq {
            Instr::beqz(r, 4 * skip)
        } else {
            Instr::bnez(r, 4 * skip)
        }
    });
    prop_oneof![
        4 => rtype,
        4 => itype,
        1 => lhi,
        2 => mem,
        1 => branch,
    ]
}

fn arb_program(len: usize) -> impl Strategy<Value = Program> {
    let slots: Vec<_> = (0..len).map(|i| arb_instr(len - i)).collect();
    slots.prop_map(|instrs| Program { base: 0, instrs })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The pipelined implementation is architecturally equivalent to the
    /// ISA reference on arbitrary hazard-dense programs.
    #[test]
    fn pipeline_equals_isa_reference(program in arb_program(16)) {
        let dlx = dlx();
        let mut spec = ArchSim::new();
        spec.load_program(0, &program.encode());
        spec.run(64);
        let result = runner::run_program(dlx, &program, 128);
        for r in 0..16u8 {
            prop_assert_eq!(
                result.reg(Reg(r)),
                u64::from(spec.reg(Reg(r))),
                "r{} mismatch in\n{}", r, program.listing()
            );
        }
        for &(word_addr, value) in &result.dmem {
            prop_assert_eq!(
                value,
                u64::from(spec.mem_word(word_addr as u32 * 4)),
                "mem[{:#x}] mismatch in\n{}", word_addr * 4, program.listing()
            );
        }
    }

    /// Binary encode/decode is the identity on architected instructions.
    #[test]
    fn instruction_encoding_roundtrips(instr in arb_instr(8)) {
        let decoded = Instr::decode(instr.encode()).expect("architected instruction decodes");
        prop_assert_eq!(decoded, instr);
    }

    /// The machine is deterministic: two runs of the same program from
    /// reset produce identical architectural state.
    #[test]
    fn machine_is_deterministic(program in arb_program(10)) {
        let dlx = dlx();
        let a = runner::run_program(dlx, &program, 64);
        let b = runner::run_program(dlx, &program, 64);
        prop_assert_eq!(a.regs, b.regs);
        prop_assert_eq!(a.dmem, b.dmem);
        prop_assert_eq!(a.pc_trace, b.pc_trace);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// An injected stuck line never causes a discrepancy when its bus never
    /// carries the opposite value (soundness of the injection model): on an
    /// all-NOP stream, buses hold their reset values, so a stuck line that
    /// matches the reset value is silent.
    #[test]
    fn silent_injection_on_idle_machine(bit in 0u32..32) {
        let dlx = dlx();
        // On an idle machine every 32-bit datapath bus except the PC chain
        // stays at reset; a stuck-at-0 on the ALU output is only visible if
        // the ALU computes something non-zero.
        let inj = hltg::sim::Injection {
            net: dlx.dp.alu_out,
            bit,
            polarity: hltg::sim::Polarity::StuckAt0,
        };
        let mut dual = hltg::sim::DualSim::new(&dlx.design, inj).expect("levelizes");
        prop_assert!(dual.run(32).is_none(), "idle machine must not expose sa0 on a zero bus");
    }
}
