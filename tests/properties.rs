//! Property-based integration tests across the workspace, driven by
//! deterministic seeded-PRNG case loops.

use hltg::core::SplitMix64;
use hltg::dlx::{runner, DlxDesign};
use hltg::isa::asm::Program;
use hltg::isa::ref_sim::ArchSim;
use hltg::isa::{Instr, Opcode, Reg};
use std::sync::OnceLock;

/// The DLX is expensive to build; share one instance across cases.
fn dlx() -> &'static DlxDesign {
    static DLX: OnceLock<DlxDesign> = OnceLock::new();
    DLX.get_or_init(DlxDesign::build)
}

/// One random architected instruction over a small register window, with
/// loads/stores confined to an aligned scratch region and only forward
/// branches (no unbounded loops).
fn arb_instr(rng: &mut SplitMix64, remaining: usize) -> Instr {
    let reg = |rng: &mut SplitMix64| Reg(rng.gen_range(0..8) as u8);
    // Weighted family pick: 4 rtype, 4 itype, 1 lhi, 2 mem, 1 branch.
    match rng.gen_range(0..12) {
        0..=3 => {
            let ops = [
                Opcode::Add,
                Opcode::Sub,
                Opcode::And,
                Opcode::Or,
                Opcode::Xor,
                Opcode::Sll,
                Opcode::Srl,
                Opcode::Sra,
                Opcode::Slt,
                Opcode::Sgt,
                Opcode::Sle,
                Opcode::Sge,
                Opcode::Seq,
                Opcode::Sne,
            ];
            Instr {
                op: ops[rng.gen_index(ops.len())],
                rd: reg(rng),
                rs1: reg(rng),
                rs2: reg(rng),
                imm: 0,
            }
        }
        4..=7 => {
            let ops = [
                Opcode::Addi,
                Opcode::Subi,
                Opcode::Andi,
                Opcode::Ori,
                Opcode::Xori,
                Opcode::Slti,
                Opcode::Snei,
            ];
            let op = ops[rng.gen_index(ops.len())];
            let imm = rng.gen_range_i64(-200..200) as i32;
            let imm = if op.imm_is_signed() { imm } else { imm.abs() };
            Instr {
                op,
                rd: reg(rng),
                rs1: reg(rng),
                rs2: Reg(0),
                imm,
            }
        }
        8 => Instr::lhi(reg(rng), rng.gen_range(0..0x1_0000) as i32),
        9..=10 => {
            let addr = 0x200 + 4 * rng.gen_range(0..16) as i32;
            if rng.gen_bool(0.5) {
                Instr::lw(reg(rng), Reg(0), addr)
            } else {
                Instr::sw(Reg(0), addr, reg(rng))
            }
        }
        _ => {
            let max_skip = remaining.saturating_sub(1).clamp(1, 3) as i64;
            let skip = rng.gen_range_i64(1..max_skip + 1) as i32;
            if rng.gen_bool(0.5) {
                Instr::beqz(reg(rng), 4 * skip)
            } else {
                Instr::bnez(reg(rng), 4 * skip)
            }
        }
    }
}

fn arb_program(rng: &mut SplitMix64, len: usize) -> Program {
    Program {
        base: 0,
        instrs: (0..len).map(|i| arb_instr(rng, len - i)).collect(),
    }
}

/// The pipelined implementation is architecturally equivalent to the
/// ISA reference on arbitrary hazard-dense programs.
#[test]
fn pipeline_equals_isa_reference() {
    let dlx = dlx();
    let mut rng = SplitMix64::new(0x1f7e_0001);
    for _case in 0..48 {
        let program = arb_program(&mut rng, 16);
        let mut spec = ArchSim::new();
        spec.load_program(0, &program.encode());
        spec.run(64);
        let result = runner::run_program(dlx, &program, 128);
        for r in 0..16u8 {
            assert_eq!(
                result.reg(Reg(r)),
                u64::from(spec.reg(Reg(r))),
                "r{} mismatch in\n{}",
                r,
                program.listing()
            );
        }
        for &(word_addr, value) in &result.dmem {
            assert_eq!(
                value,
                u64::from(spec.mem_word(word_addr as u32 * 4)),
                "mem[{:#x}] mismatch in\n{}",
                word_addr * 4,
                program.listing()
            );
        }
    }
}

/// Binary encode/decode is the identity on architected instructions.
#[test]
fn instruction_encoding_roundtrips() {
    let mut rng = SplitMix64::new(0x1f7e_0002);
    for _case in 0..48 {
        let instr = arb_instr(&mut rng, 8);
        let decoded = Instr::decode(instr.encode()).expect("architected instruction decodes");
        assert_eq!(decoded, instr);
    }
}

/// The machine is deterministic: two runs of the same program from
/// reset produce identical architectural state.
#[test]
fn machine_is_deterministic() {
    let dlx = dlx();
    let mut rng = SplitMix64::new(0x1f7e_0003);
    for _case in 0..48 {
        let program = arb_program(&mut rng, 10);
        let a = runner::run_program(dlx, &program, 64);
        let b = runner::run_program(dlx, &program, 64);
        assert_eq!(a.regs, b.regs);
        assert_eq!(a.dmem, b.dmem);
        assert_eq!(a.pc_trace, b.pc_trace);
    }
}

/// An injected stuck line never causes a discrepancy when its bus never
/// carries the opposite value (soundness of the injection model): on an
/// all-NOP stream, buses hold their reset values, so a stuck line that
/// matches the reset value is silent.
#[test]
fn silent_injection_on_idle_machine() {
    let dlx = dlx();
    for bit in 0u32..32 {
        // On an idle machine every 32-bit datapath bus except the PC chain
        // stays at reset; a stuck-at-0 on the ALU output is only visible if
        // the ALU computes something non-zero.
        let inj = hltg::sim::Injection {
            net: dlx.dp.alu_out,
            bit,
            polarity: hltg::sim::Polarity::StuckAt0,
        };
        let mut dual = hltg::sim::DualSim::new(&dlx.design, inj).expect("levelizes");
        assert!(
            dual.run(32).is_none(),
            "idle machine must not expose sa0 on a zero bus"
        );
    }
}
