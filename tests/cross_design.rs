//! Cross-design guarantees: every registered backend runs the campaign
//! thread-count deterministically (the deterministic report is
//! byte-equal across 1/2/8 workers), the width and depth variants
//! produce their own Table-1 reports, and checkpoints are keyed to the
//! design that wrote them (fingerprint v3) — a file written under one
//! `--design` is refused, not mixed in, under another.

use hltg::prelude::*;

fn config_at(model: &dyn ProcessorModel, num_threads: usize) -> CampaignConfig {
    CampaignConfig {
        stages: model.error_stages(),
        limit: Some(8),
        num_threads,
        ..CampaignConfig::default()
    }
}

#[test]
fn every_backend_is_thread_count_deterministic() {
    register_backends();
    for name in backend_names() {
        let model = build_model(name).expect("registered backend");
        let model = model.as_ref();
        let reference = Campaign::run(model, &config_at(model, 1), RunOptions::default());
        assert_eq!(reference.report.stats.errors, 8, "{name}");
        let reference = reference.report.to_json_deterministic();
        for threads in [2, 8] {
            let sharded = Campaign::run(model, &config_at(model, threads), RunOptions::default())
                .report
                .to_json_deterministic();
            assert_eq!(
                sharded, reference,
                "{name}: deterministic report diverges at num_threads={threads}"
            );
        }
    }
}

#[test]
fn width_and_depth_variants_report_their_own_table1() {
    for name in ["dlx16", "dlx-lite", "rv32", "rv32-7"] {
        let model = build_model(name).expect("registered backend");
        let model = model.as_ref();
        let campaign = Campaign::run(model, &config_at(model, 1), RunOptions::default()).campaign;
        let stats = campaign.stats();
        assert_eq!(stats.errors, 8, "{name}");
        assert!(stats.detected > 0, "{name}: campaign detected nothing");
        let report = campaign.table1_report();
        assert!(report.contains("Coverage"), "{name}: {report}");
    }
}

/// Stats with the wall-clock field zeroed: `seconds` is the only
/// legitimately run-dependent quantity.
fn stats_sans_time(c: &Campaign) -> CampaignStats {
    let mut s = c.stats();
    s.seconds = 0.0;
    s
}

#[test]
fn checkpoints_are_design_keyed() {
    let path = std::env::temp_dir().join("hltg_cross_design_ckpt.jsonl");
    let _ = std::fs::remove_file(&path);
    let dlx = build_model("dlx").expect("registered backend");
    let lite = build_model("dlx-lite").expect("registered backend");
    let with_ckpt = |model: &dyn ProcessorModel| CampaignConfig {
        checkpoint: Some(path.clone()),
        ..config_at(model, 1)
    };
    // The fingerprint distinguishes every backend pair.
    let fp = |m: &dyn ProcessorModel| Campaign::checkpoint_fingerprint(m, &with_ckpt(m));
    let dlx16 = build_model("dlx16").expect("registered backend");
    let rv32 = build_model("rv32").expect("registered backend");
    let rv32_7 = build_model("rv32-7").expect("registered backend");
    assert_ne!(fp(dlx.as_ref()), fp(lite.as_ref()));
    assert_ne!(fp(dlx.as_ref()), fp(dlx16.as_ref()));
    assert_ne!(fp(dlx16.as_ref()), fp(lite.as_ref()));
    assert_ne!(fp(rv32.as_ref()), fp(rv32_7.as_ref()));
    assert_ne!(fp(dlx.as_ref()), fp(rv32.as_ref()));

    // Write a checkpoint under the classic design...
    let first = Campaign::run(dlx.as_ref(), &with_ckpt(dlx.as_ref()), RunOptions::default());
    assert_eq!(first.report.stats.errors, 8);
    assert!(path.exists(), "checkpoint file written");
    // ...then resume under dlx-lite: the foreign file is refused, not
    // mixed in — the run matches an unpersisted dlx-lite campaign.
    let resumed =
        Campaign::run(lite.as_ref(), &with_ckpt(lite.as_ref()), RunOptions::default()).campaign;
    let plain =
        Campaign::run(lite.as_ref(), &config_at(lite.as_ref(), 1), RunOptions::default()).campaign;
    assert_eq!(stats_sans_time(&resumed), stats_sans_time(&plain));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn rv32_depth_variants_refuse_each_others_checkpoints() {
    let path = std::env::temp_dir().join("hltg_cross_design_rv32_ckpt.jsonl");
    let _ = std::fs::remove_file(&path);
    let shallow = build_model("rv32").expect("registered backend");
    let deep = build_model("rv32-7").expect("registered backend");
    let with_ckpt = |model: &dyn ProcessorModel| CampaignConfig {
        checkpoint: Some(path.clone()),
        ..config_at(model, 1)
    };
    // Write a checkpoint under the five-stage build...
    let first = Campaign::run(
        shallow.as_ref(),
        &with_ckpt(shallow.as_ref()),
        RunOptions::default(),
    );
    assert_eq!(first.report.stats.errors, 8);
    assert!(path.exists(), "checkpoint file written");
    // ...then resume under the seven-stage build: the foreign file is
    // refused, not mixed in — the run matches an unpersisted rv32-7
    // campaign.
    let resumed = Campaign::run(deep.as_ref(), &with_ckpt(deep.as_ref()), RunOptions::default())
        .campaign;
    let plain = Campaign::run(
        deep.as_ref(),
        &config_at(deep.as_ref(), 1),
        RunOptions::default(),
    )
    .campaign;
    assert_eq!(stats_sans_time(&resumed), stats_sans_time(&plain));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn rv32_packed_screening_matches_serial_verdicts() {
    // The fault-parallel (packed) screening passes must not change any
    // verdict: an rv32 campaign with packed screening on and off produces
    // the identical deterministic report (only throughput counters move,
    // and those are excluded from the deterministic serialization).
    for name in ["rv32", "rv32-7"] {
        let model = build_model(name).expect("registered backend");
        let model = model.as_ref();
        let run_with = |packed: bool| {
            let config = CampaignConfig {
                error_simulation: true,
                packed_screen: packed,
                ..config_at(model, 1)
            };
            Campaign::run(model, &config, RunOptions::default())
                .report
                .to_json_deterministic()
        };
        assert_eq!(
            run_with(true),
            run_with(false),
            "{name}: packed screening changed a verdict"
        );
    }
}
