//! The merged `Tracer` output is deterministic: for any worker-thread
//! count, the kept per-error spans, the per-phase cost histograms and the
//! backtrack-depth distribution are bit-for-bit identical (the JSONL in
//! its deterministic form is byte-equal), mirroring
//! `tests/parallel_determinism.rs` for the trace subsystem.

use hltg::core::{
    Campaign, CampaignConfig, CampaignRun, ChaosConfig, RetryPolicy, RunOptions, TraceSnapshot,
};
use hltg::dlx::DlxModel;
use hltg::netlist::ProcessorModel;

fn traced_run(model: &dyn ProcessorModel, num_threads: usize, error_simulation: bool) -> TraceSnapshot {
    let run = Campaign::run(
        model,
        &CampaignConfig {
            limit: Some(16),
            error_simulation,
            num_threads,
            ..CampaignConfig::default()
        },
        RunOptions {
            trace: true,
            ..RunOptions::default()
        },
    );
    run.trace.expect("trace requested")
}

#[test]
fn thread_count_does_not_change_the_trace() {
    let dlx = DlxModel::new();
    for error_simulation in [false, true] {
        let base = traced_run(&dlx, 1, error_simulation);
        assert!(!base.spans.is_empty(), "campaign produced no spans");
        let base_jsonl = base.to_jsonl_deterministic();
        for threads in [2, 8] {
            let sharded = traced_run(&dlx, threads, error_simulation);
            assert_eq!(
                sharded.to_jsonl_deterministic(),
                base_jsonl,
                "deterministic trace diverges at num_threads={threads} \
                 (error_simulation={error_simulation})"
            );
            // The structured form agrees too: spans (minus wall-clock) and
            // the deterministic histograms.
            assert_eq!(sharded.spans.len(), base.spans.len());
            for (a, b) in sharded.spans.iter().zip(base.spans.iter()) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.detected, b.detected);
                assert_eq!(a.decisions, b.decisions);
                assert_eq!(a.backtracks, b.backtracks);
                assert_eq!(a.depth_hist, b.depth_hist);
            }
            assert_eq!(sharded.cost_hist, base.cost_hist);
            assert_eq!(sharded.backtrack_depth_hist, base.backtrack_depth_hist);
        }
    }
}

/// Spans line up one-to-one with the generated (non-screened) records, in
/// enumeration order, and the detected flags agree record-by-record.
#[test]
fn spans_mirror_generated_records()  {
    let dlx = DlxModel::new();
    let run = Campaign::run(
        &dlx,
        &CampaignConfig {
            limit: Some(12),
            error_simulation: true,
            num_threads: 4,
            ..CampaignConfig::default()
        },
        RunOptions {
            trace: true,
            ..RunOptions::default()
        },
    );
    let trace = run.trace.expect("trace requested");
    let generated: Vec<_> = run
        .campaign
        .records
        .iter()
        .filter(|r| !r.by_simulation)
        .collect();
    assert_eq!(trace.spans.len(), generated.len());
    assert_eq!(
        trace.screened,
        run.campaign.records.len() - generated.len()
    );
    for (span, record) in trace.spans.iter().zip(generated.iter()) {
        assert_eq!(span.id, u64::from(record.error.id.0));
        assert_eq!(span.detected, record.outcome.is_detected());
        assert!(span.phase_calls.iter().any(|c| c.ns > 0) || span.phase_calls.is_empty());
    }
}

fn metrics_run(model: &dyn ProcessorModel, config: &CampaignConfig) -> CampaignRun {
    Campaign::run(
        model,
        config,
        RunOptions {
            trace: true,
            metrics: Some(4),
            ..RunOptions::default()
        },
    )
}

/// The deterministic `--metrics-out` stream is byte-identical for any
/// worker-thread count, with and without error simulation.
#[test]
fn metrics_timeline_is_thread_invariant() {
    let dlx = DlxModel::new();
    for error_simulation in [false, true] {
        let config = |num_threads| CampaignConfig {
            limit: Some(16),
            error_simulation,
            num_threads,
            ..CampaignConfig::default()
        };
        let base = metrics_run(&dlx, &config(1));
        let base_metrics = base.metrics.expect("metrics requested");
        assert!(!base_metrics.recs.is_empty(), "campaign recorded no errors");
        assert!(!base_metrics.snaps.is_empty(), "no snapshots assembled");
        let base_jsonl = base_metrics.to_jsonl_deterministic();
        for threads in [2, 8] {
            let sharded = metrics_run(&dlx, &config(threads));
            assert_eq!(
                sharded
                    .metrics
                    .expect("metrics requested")
                    .to_jsonl_deterministic(),
                base_jsonl,
                "deterministic metrics diverge at num_threads={threads} \
                 (error_simulation={error_simulation})"
            );
        }
    }
}

/// The hardest merge case in one campaign: chaos-injected panics, one
/// escalated retry round, and packed screening. The deterministic trace
/// *and* metrics streams stay byte-identical across thread counts, the
/// packed-screen counters are thread-invariant (they fire only on the
/// sequential covering pass), and retried spans survive the merge.
#[test]
fn metrics_and_trace_merge_under_chaos_retries_and_packing() {
    let dlx = DlxModel::new();
    let config = |num_threads| CampaignConfig {
        limit: Some(12),
        error_simulation: true,
        num_threads,
        retry: RetryPolicy {
            rounds: 1,
            escalate: 2,
        },
        chaos: Some(ChaosConfig {
            seed: 7,
            panic_permille: 400,
            first_attempt_only: true,
            ..ChaosConfig::default()
        }),
        ..CampaignConfig::default()
    };
    let base = metrics_run(&dlx, &config(1));
    let base_metrics = base.metrics.as_ref().expect("metrics requested");
    let base_trace = base.trace.as_ref().expect("trace requested");
    assert!(
        base.campaign.records.iter().any(|r| r.round > 0),
        "chaos at 400 permille produced no retried records"
    );
    let packed_screens = base.report.counters.count("packed_screens");
    let packed_lanes = base.report.counters.count("packed_lanes");
    assert!(packed_screens > 0, "packed screening never fired");
    assert!(packed_lanes >= packed_screens);
    let base_metrics_jsonl = base_metrics.to_jsonl_deterministic();
    let base_trace_jsonl = base_trace.to_jsonl_deterministic();
    for threads in [2, 8] {
        let sharded = metrics_run(&dlx, &config(threads));
        let metrics = sharded.metrics.expect("metrics requested");
        assert_eq!(
            metrics.to_jsonl_deterministic(),
            base_metrics_jsonl,
            "deterministic metrics diverge at num_threads={threads}"
        );
        assert_eq!(
            sharded
                .trace
                .expect("trace requested")
                .to_jsonl_deterministic(),
            base_trace_jsonl,
            "deterministic trace diverges at num_threads={threads}"
        );
        assert_eq!(
            sharded.report.counters.count("packed_screens"),
            packed_screens,
            "packed_screens is thread-dependent at num_threads={threads}"
        );
        assert_eq!(
            sharded.report.counters.count("packed_lanes"),
            packed_lanes,
            "packed_lanes is thread-dependent at num_threads={threads}"
        );
        assert!(metrics.recs.iter().any(|r| r.round > 0));
    }
}
