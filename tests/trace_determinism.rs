//! The merged `Tracer` output is deterministic: for any worker-thread
//! count, the kept per-error spans, the per-phase cost histograms and the
//! backtrack-depth distribution are bit-for-bit identical (the JSONL in
//! its deterministic form is byte-equal), mirroring
//! `tests/parallel_determinism.rs` for the trace subsystem.

use hltg::core::{Campaign, CampaignConfig, RunOptions, TraceSnapshot};
use hltg::dlx::DlxModel;
use hltg::netlist::ProcessorModel;

fn traced_run(model: &dyn ProcessorModel, num_threads: usize, error_simulation: bool) -> TraceSnapshot {
    let run = Campaign::run(
        model,
        &CampaignConfig {
            limit: Some(16),
            error_simulation,
            num_threads,
            ..CampaignConfig::default()
        },
        RunOptions {
            trace: true,
            progress: false,
            probe: None,
        },
    );
    run.trace.expect("trace requested")
}

#[test]
fn thread_count_does_not_change_the_trace() {
    let dlx = DlxModel::new();
    for error_simulation in [false, true] {
        let base = traced_run(&dlx, 1, error_simulation);
        assert!(!base.spans.is_empty(), "campaign produced no spans");
        let base_jsonl = base.to_jsonl_deterministic();
        for threads in [2, 8] {
            let sharded = traced_run(&dlx, threads, error_simulation);
            assert_eq!(
                sharded.to_jsonl_deterministic(),
                base_jsonl,
                "deterministic trace diverges at num_threads={threads} \
                 (error_simulation={error_simulation})"
            );
            // The structured form agrees too: spans (minus wall-clock) and
            // the deterministic histograms.
            assert_eq!(sharded.spans.len(), base.spans.len());
            for (a, b) in sharded.spans.iter().zip(base.spans.iter()) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.detected, b.detected);
                assert_eq!(a.decisions, b.decisions);
                assert_eq!(a.backtracks, b.backtracks);
                assert_eq!(a.depth_hist, b.depth_hist);
            }
            assert_eq!(sharded.cost_hist, base.cost_hist);
            assert_eq!(sharded.backtrack_depth_hist, base.backtrack_depth_hist);
        }
    }
}

/// Spans line up one-to-one with the generated (non-screened) records, in
/// enumeration order, and the detected flags agree record-by-record.
#[test]
fn spans_mirror_generated_records()  {
    let dlx = DlxModel::new();
    let run = Campaign::run(
        &dlx,
        &CampaignConfig {
            limit: Some(12),
            error_simulation: true,
            num_threads: 4,
            ..CampaignConfig::default()
        },
        RunOptions {
            trace: true,
            progress: false,
            probe: None,
        },
    );
    let trace = run.trace.expect("trace requested");
    let generated: Vec<_> = run
        .campaign
        .records
        .iter()
        .filter(|r| !r.by_simulation)
        .collect();
    assert_eq!(trace.spans.len(), generated.len());
    assert_eq!(
        trace.screened,
        run.campaign.records.len() - generated.len()
    );
    for (span, record) in trace.spans.iter().zip(generated.iter()) {
        assert_eq!(span.id, u64::from(record.error.id.0));
        assert_eq!(span.detected, record.outcome.is_detected());
        assert!(span.phase_calls.iter().any(|c| c.ns > 0) || span.phase_calls.is_empty());
    }
}
