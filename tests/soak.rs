//! Chaos soak suite for the campaign service (`hltg-serve`).
//!
//! The contract under test: a job sliced across arbitrary scheduler
//! interleavings — concurrent siblings, chaos-injected worker panics,
//! stalls, torn/short checkpoint appends, deterministic worker kills,
//! supervisor condemnations and whole-service kill/resume cycles —
//! produces a final report byte-identical
//! (`CampaignReport::to_json_deterministic`) to an uninterrupted
//! single-threaded `Campaign::run` of the same configuration. And the
//! failure path: a crash-looping job must end in a `degraded` verdict
//! with partial results instead of hanging the service.

use hltg::core::{Campaign, RunOptions};
use hltg::build_model;
use hltg::serve::{
    extract_report, serve_lines, ChaosSpec, Client, Event, JobSpec, ServeConfig, Service, Verdict,
};
use std::io::Cursor;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Debug builds generate tests an order of magnitude slower than the
/// release builds the timing defaults are tuned for. Scale the
/// timing-sensitive knobs (heartbeat deadline, injected stall length)
/// so a slow-but-healthy debug worker is not condemned until it burns a
/// shard's whole attempt budget; the contract under test is
/// timing-independent either way.
const SLOW: u64 = if cfg!(debug_assertions) { 20 } else { 1 };

/// A fresh spool directory per test (tests run concurrently in one
/// process).
fn temp_spool(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hltg_soak_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Service tuning that makes the failure machinery hot: tight heartbeat
/// deadline (injected stalls sleep well past it), fast supervisor scan,
/// millisecond backoffs.
fn soak_cfg(workers: usize, spool: &Path) -> ServeConfig {
    ServeConfig {
        workers,
        spool: spool.to_path_buf(),
        heartbeat_deadline: Duration::from_millis(60 * SLOW),
        supervise_every: Duration::from_millis(5),
        max_attempts: 16,
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(16),
    }
}

/// Full-spectrum chaos: generator panics and spurious backtracks,
/// checkpoint I/O faults, worker kills and heartbeat-silent stalls.
fn full_chaos(seed: u64) -> ChaosSpec {
    ChaosSpec {
        seed,
        panic_permille: 250,
        backtrack_permille: 100,
        ckpt_torn_permille: 200,
        ckpt_full_permille: 100,
        kill_permille: 120,
        stall_permille: 60,
        stall_ms: 120 * SLOW,
    }
}

fn soak_spec(name: &str, design: &str, limit: usize, seed: u64) -> JobSpec {
    JobSpec {
        name: name.to_string(),
        design: design.to_string(),
        limit: Some(limit),
        retry_rounds: 1,
        shard_size: 2,
        chaos: Some(full_chaos(seed)),
        ..JobSpec::default()
    }
}

/// The reference: an uninterrupted single-threaded run of the same
/// normalized configuration, no checkpoint, no service.
fn reference_report(spec: &JobSpec) -> String {
    let model = build_model(&spec.design).expect("registered design");
    let config = spec.to_campaign_config().expect("valid spec");
    assert_eq!(config.effective_threads(), 1);
    Campaign::run(model.as_ref(), &config, RunOptions::default())
        .report
        .to_json_deterministic()
}

/// N concurrent chaos jobs at 1, 2 and 8 workers: every final report is
/// byte-identical to its uninterrupted run, regardless of how shards
/// interleaved, died and resumed.
#[test]
fn concurrent_chaos_jobs_match_uninterrupted_runs_at_every_worker_count() {
    for workers in [1usize, 2, 8] {
        let spool = temp_spool(&format!("conc{workers}"));
        let specs = [
            soak_spec("dlx-a", "dlx", 8, 11),
            soak_spec("dlx16-b", "dlx16", 6, 12),
            soak_spec("lite-c", "dlx-lite", 6, 13),
        ];
        let (service, _events) = Service::start(soak_cfg(workers, &spool));
        let jobs: Vec<_> = specs
            .iter()
            .map(|s| (s, service.submit(s).expect("accepted")))
            .collect();
        for (spec, job) in jobs {
            let done = service
                .wait_done(job, Duration::from_secs(120))
                .unwrap_or_else(|| panic!("{} at {workers} workers did not finish", spec.name));
            assert_eq!(
                done.verdict,
                Verdict::Ok,
                "{} at {workers} workers",
                spec.name
            );
            assert_eq!(done.completed, done.total);
            assert_eq!(
                done.report,
                reference_report(spec),
                "{} at {workers} workers diverged from the uninterrupted run",
                spec.name
            );
        }
        service.drain();
        let _ = std::fs::remove_dir_all(&spool);
    }
}

/// The chaos schedule is deterministic, so the soak actually exercises
/// the supervision machinery rather than vacuously passing: respawns,
/// stall condemnations and injected kills all fire at 2 workers.
#[test]
fn the_soak_exercises_the_failure_machinery() {
    let spool = temp_spool("exercised");
    let (service, _events) = Service::start(soak_cfg(2, &spool));
    // Hotter stall rate than the byte-identity soaks: one small job must
    // draw every fault class on its own.
    let mut spec = soak_spec("exercise", "dlx", 10, 11);
    spec.chaos = Some(ChaosSpec {
        stall_permille: 300,
        ..full_chaos(11)
    });
    let job = service.submit(&spec).expect("accepted");
    let done = service
        .wait_done(job, Duration::from_secs(120))
        .expect("finishes");
    assert_eq!(done.verdict, Verdict::Ok);
    let m = service.metrics();
    assert!(m.chaos_kills > 0, "no injected kill fired: {m:?}");
    assert!(m.chaos_stalls > 0, "no injected stall fired: {m:?}");
    assert!(m.stalls_detected > 0, "the supervisor never condemned: {m:?}");
    assert!(m.respawns > 0, "no shard was ever respawned: {m:?}");
    assert!(m.records_streamed > 0);
    service.drain();
    let _ = std::fs::remove_dir_all(&spool);
}

/// Killing the whole service mid-run and resubmitting against the same
/// spool resumes from the checkpoint and still produces the
/// byte-identical report.
#[test]
fn mid_run_kill_and_resume_is_byte_identical() {
    let spool = temp_spool("killresume");
    let spec = soak_spec("resume-me", "dlx", 10, 21);
    let (service, events) = Service::start(soak_cfg(2, &spool));
    service.submit(&spec).expect("accepted");
    // Let some generation land in the checkpoint, then pull the plug.
    let mut records = 0;
    for ev in events.iter() {
        if matches!(ev, Event::Record { .. }) {
            records += 1;
            if records >= 3 {
                break;
            }
        }
    }
    service.shutdown_now();

    let (service, events) = Service::start(soak_cfg(2, &spool));
    let job = service.submit(&spec).expect("resubmitted");
    let done = service
        .wait_done(job, Duration::from_secs(120))
        .expect("finishes after resume");
    assert_eq!(done.verdict, Verdict::Ok);
    assert_eq!(done.report, reference_report(&spec));
    // The resubmission really resumed (the first service checkpointed
    // at least the records we saw).
    let resumed = events.iter().find_map(|ev| match ev {
        Event::Accepted { resumed, .. } => Some(resumed),
        _ => None,
    });
    assert!(
        resumed.is_some_and(|r| r > 0),
        "second service did not resume from the first one's checkpoint"
    );
    service.drain();
    let _ = std::fs::remove_dir_all(&spool);
}

/// A crash-looping job (certain kill at every attempt) burns its
/// attempt budget, degrades with partial results, and leaves a healthy
/// sibling untouched.
#[test]
fn a_crash_looping_job_degrades_and_spares_its_siblings() {
    let spool = temp_spool("degrade");
    let mut cfg = soak_cfg(2, &spool);
    cfg.max_attempts = 3;
    // The crash loop is driven purely by injected kills; park the
    // deadline out of reach so a slow debug worker cannot eat the tiny
    // attempt budget (and degrade the healthy sibling) by condemnation.
    cfg.heartbeat_deadline = Duration::from_secs(60);
    let (service, events) = Service::start(cfg);
    let looping = JobSpec {
        chaos: Some(ChaosSpec {
            kill_permille: 1000,
            ..full_chaos(31)
        }),
        ..soak_spec("crash-loop", "dlx", 6, 31)
    };
    let healthy = JobSpec {
        chaos: None,
        ..soak_spec("healthy", "dlx16", 4, 32)
    };
    let loop_job = service.submit(&looping).expect("accepted");
    let healthy_job = service.submit(&healthy).expect("accepted");
    let done = service
        .wait_done(loop_job, Duration::from_secs(120))
        .expect("the crash loop must terminate, not hang the service");
    assert_eq!(done.verdict, Verdict::Degraded);
    assert!(
        done.completed > 0 && done.completed < done.total,
        "degraded verdict should carry partial results: {}/{}",
        done.completed,
        done.total
    );
    assert!(done.report.contains("\"errors\": "));
    let sibling = service
        .wait_done(healthy_job, Duration::from_secs(120))
        .expect("healthy sibling finishes");
    assert_eq!(sibling.verdict, Verdict::Ok);
    assert_eq!(sibling.report, reference_report(&healthy));
    service.drain();
    let evs: Vec<Event> = events.iter().collect();
    assert!(
        evs.iter().any(|e| matches!(e, Event::Degraded { .. })),
        "no degraded event on the stream"
    );
    let _ = std::fs::remove_dir_all(&spool);
}

/// The same contract end to end over the line protocol: submit via
/// request lines, read the done event off the output, byte-compare the
/// embedded report.
#[test]
fn the_line_protocol_round_trips_the_deterministic_report() {
    let spool = temp_spool("protocol");
    let spec = soak_spec("proto", "dlx", 6, 41);
    let input = format!(
        "{}\n{}\n{}\n{}\n",
        Client::submit_line(&spec),
        Client::status_line(),
        Client::metrics_line(),
        Client::shutdown_line(true)
    );
    let (service, events) = Service::start(soak_cfg(2, &spool));
    let out = serve_lines(service, events, Cursor::new(input), Vec::new());
    let transcript = String::from_utf8(out).expect("utf8 events");
    assert!(
        transcript.contains("\"ev\": \"accepted\""),
        "{transcript}"
    );
    assert!(transcript.contains("\"ev\": \"record\""));
    assert!(transcript.contains("\"ev\": \"status\""));
    assert!(transcript.contains("\"ev\": \"metrics\""));
    assert!(transcript.trim_end().ends_with("{\"ev\": \"stopped\"}"));
    let (verdict, report) = Client::done_of(&transcript, "proto").expect("done event");
    assert_eq!(verdict, "ok");
    assert_eq!(report, reference_report(&spec));
    // Every emitted line is valid JSON.
    for line in transcript.lines() {
        hltg::core::jsonv::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
    }
    let _ = std::fs::remove_dir_all(&spool);
}

/// Malformed and unknown request lines produce rejected events instead
/// of killing the service.
#[test]
fn bad_request_lines_are_survivable() {
    let spool = temp_spool("badlines");
    let input = "this is not json\n\
                 {\"req\": \"warp\"}\n\
                 {\"req\": \"submit\", \"name\": \"ok\", \"design\": \"nope\"}\n\
                 {\"req\": \"shutdown\", \"drain\": true}\n";
    let (service, events) = Service::start(soak_cfg(1, &spool));
    let out = serve_lines(service, events, Cursor::new(input), Vec::new());
    let transcript = String::from_utf8(out).expect("utf8 events");
    assert_eq!(
        transcript.matches("\"ev\": \"rejected\"").count(),
        3,
        "{transcript}"
    );
    assert!(transcript.contains("unknown design"));
    assert!(transcript.trim_end().ends_with("{\"ev\": \"stopped\"}"));
    let _ = std::fs::remove_dir_all(&spool);
}

/// `extract_report` is the byte-exact inverse of the done event's
/// report embedding, including on real reports.
#[test]
fn report_extraction_is_byte_exact_on_real_reports() {
    let spec = JobSpec {
        name: "x".to_string(),
        limit: Some(4),
        ..JobSpec::default()
    };
    let report = reference_report(&spec);
    let line = Event::Done {
        job: hltg::serve::JobId(9),
        name: "x".to_string(),
        verdict: Verdict::Ok,
        completed: 4,
        total: 4,
        report: report.clone(),
    }
    .to_json();
    assert_eq!(extract_report(&line), Some(report.as_str()));
}
