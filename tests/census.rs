//! Integration checks of the paper's §VI structural claims on our test
//! vehicle, and of the §IV search-space relationship.

use hltg::core::pipeframe::SearchSpaceAnalysis;
use hltg::dlx::DlxDesign;
use hltg::errors::{enumerate_stage_errors, EnumPolicy};
use hltg::isa::instr::ALL_OPCODES;
use hltg::netlist::Stage;

#[test]
fn isa_has_exactly_44_instructions() {
    assert_eq!(ALL_OPCODES.len(), 44);
}

#[test]
fn vehicle_matches_paper_regime() {
    let dlx = DlxDesign::build();
    let dp = dlx.design.dp.census();
    let ctl = dlx.design.ctl.census();
    // Paper: datapath 512 state bits (excl. regfile), controller 96 bits,
    // 43 tertiary. Ours is leaner; the *relationships* must hold.
    assert!(dp.state_bits >= 300 && dp.state_bits <= 700, "{}", dp.state_bits);
    assert!(ctl.state_bits >= 30 && ctl.state_bits <= 150, "{}", ctl.state_bits);
    assert!(ctl.tertiary > 0);
    assert!(
        ctl.tertiary * 3 <= ctl.state_bits,
        "n3 ({}) must be much smaller than n2 ({})",
        ctl.tertiary,
        ctl.state_bits
    );
    // The tertiary data buses (bypasses, redirect targets) exist.
    assert!(dp.tertiary_nets >= 4);
    // Cross-domain interface is narrow: single-bit CTRL/STS only.
    assert_eq!(dlx.design.ctrl_binds.len(), dp.ctrl_signals);
    assert_eq!(dlx.design.sts_binds.len(), dp.status_signals);
    assert_eq!(dlx.design.cpi_binds.len(), ctl.cpi);
}

#[test]
fn pipeframe_reduction_holds_and_is_not_degenerate() {
    let dlx = DlxDesign::build();
    let a = SearchSpaceAnalysis::of(&dlx.design.ctl);
    assert!(!a.is_degenerate());
    assert!(a.justify_reduction().expect("tertiary exist") >= 2.0);
    assert!(a.log2_space_ratio() >= 20, "log2 ratio {}", a.log2_space_ratio());
}

#[test]
fn error_population_is_linear_in_circuit_size() {
    let dlx = DlxDesign::build();
    let stages = [Stage::new(2), Stage::new(3), Stage::new(4)];
    let rep = enumerate_stage_errors(&dlx.design, &stages, EnumPolicy::RepresentativePerBus);
    let all = enumerate_stage_errors(&dlx.design, &stages, EnumPolicy::AllBits);
    // Representative: exactly two per bus — linear in bus count, as the
    // bus SSL model requires (the reason the paper chose it).
    let buses: std::collections::HashSet<_> = rep.iter().map(|e| e.net).collect();
    assert_eq!(rep.len(), 2 * buses.len());
    assert!(all.len() > rep.len());
    // Same regime as the paper's 298.
    assert!(rep.len() >= 80 && rep.len() <= 600, "{}", rep.len());
}
