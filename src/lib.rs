//! # hltg — High-Level Test Generation for Pipelined Microprocessors
//!
//! Facade crate re-exporting the whole `hltg` workspace: a reproduction of
//! Van Campenhout, Mudge & Hayes, *"High-Level Test Generation for Design
//! Verification of Pipelined Microprocessors"* (DAC 1999).
//!
//! The workspace implements:
//!
//! * [`netlist`] — the structured processor model: word-level datapath,
//!   gate-level controller, primary/secondary/tertiary signal classes;
//! * [`sim`] — cycle-accurate simulation, dual good/bad simulation and
//!   error injection;
//! * [`isa`] — the 44-instruction DLX ISA, assembler and architectural
//!   reference simulator;
//! * [`dlx`] — the five-stage pipelined DLX test vehicle (stall, squash,
//!   bypass);
//! * [`rv32`] — RISC-style five- and seven-stage pipelines written in
//!   the typed netlist-builder DSL ([`netlist::builder`]);
//! * [`errors`] — the bus single-stuck-line (bus SSL) design-error model;
//! * [`core`] — the three-part test generation algorithm: `DPTRACE` path
//!   selection, `DPRELAX` discrete relaxation and `CTRLJUST` controller
//!   justification, organized around the pipeframe model;
//! * [`serve`] — the supervised campaign service: a JSONL job protocol,
//!   a shared worker pool with heartbeat supervision and
//!   kill-and-respawn, checkpoint-backed resume and chaos soak testing.
//!
//! Every engine is generic over [`prelude::ProcessorModel`]. Backends
//! publish themselves into the process-wide [`netlist::registry`] under
//! stable names: `dlx`, `dlx16` and `dlx-lite` from [`dlx`], `rv32` and
//! `rv32-7` from [`rv32`]. [`build_model`] registers every workspace
//! backend and resolves a name in one call.
//!
//! # Quick start
//!
//! ```
//! use hltg::prelude::*;
//! use hltg::errors::{BusSslError, Polarity};
//!
//! // Build the DLX test vehicle and pick a design error in the EX stage.
//! let model = DlxModel::new();
//! let errors = hltg::errors::enumerate_stage_errors(
//!     model.design(),
//!     &[hltg::netlist::Stage::new(2)],
//!     hltg::errors::EnumPolicy::RepresentativePerBus,
//! );
//! let error: &BusSslError = &errors[0];
//! assert!(matches!(error.polarity, Polarity::StuckAt0 | Polarity::StuckAt1));
//!
//! // Generate a verification test for it.
//! let mut tg = TestGenerator::new(&model, TgConfig::default());
//! let outcome = tg.generate(error);
//! println!("{outcome:?}");
//! ```
//!
//! Whole-population campaigns go through the single entry point
//! [`prelude::Campaign::run`]:
//!
//! ```
//! use hltg::prelude::*;
//!
//! let model = build_model("dlx").expect("registered backend");
//! let config = CampaignConfig::builder().limit(4).build().unwrap();
//! let run = Campaign::run(model.as_ref(), &config, RunOptions::default());
//! assert_eq!(run.report.stats.errors, 4);
//! ```

pub use hltg_core as core;
pub use hltg_dlx as dlx;
pub use hltg_errors as errors;
pub use hltg_isa as isa;
pub use hltg_netlist as netlist;
pub use hltg_rv32 as rv32;
pub use hltg_serve as serve;
pub use hltg_sim as sim;

/// Registers every workspace backend (`dlx`, `dlx16`, `dlx-lite`,
/// `rv32`, `rv32-7`) with the process-wide [`netlist::registry`].
/// Idempotent.
pub fn register_backends() {
    hltg_dlx::register_backends();
    hltg_rv32::register_backends();
}

/// Builds the backend registered under `name`, or `None` for an unknown
/// name. Calls [`register_backends`] first, so every workspace design is
/// resolvable without further setup; externally-registered backends
/// resolve too.
#[must_use]
pub fn build_model(name: &str) -> Option<Box<dyn netlist::ProcessorModel>> {
    register_backends();
    netlist::registry::build_model(name)
}

/// The stable public surface in one import.
///
/// Everything a driver binary needs to run a campaign on any registered
/// backend: the design abstraction ([`ProcessorModel`] and the
/// [`build_model`] registry), the campaign entry point
/// ([`Campaign::run`] with [`CampaignConfig`] / [`RunOptions`]), its
/// results ([`CampaignReport`], [`CampaignStats`]), the per-error
/// generator ([`TestGenerator`], [`TgConfig`], [`Outcome`]) and the
/// observability hook ([`Probe`]). See `DESIGN.md` §2 for the surface
/// contract.
pub mod prelude {
    pub use hltg_core::{
        Campaign, CampaignConfig, CampaignConfigBuilder, CampaignReport, CampaignRun,
        CampaignStats, ConfigError, FlightRecorder, MetricsTimeline, Outcome, Probe,
        RetryPolicy, RunOptions, TestGenerator, TgConfig,
    };
    pub use crate::{build_model, register_backends};
    pub use hltg_dlx::{DlxModel, LiteModel};
    pub use hltg_netlist::registry::{backend_names, backends, is_registered, Backend};
    pub use hltg_netlist::{
        BuildError, DpDsl, PipelineDesc, ProcessorModel, Signal, Stage, StageDsl,
    };
    pub use hltg_rv32::Rv32Model;
}
