//! # hltg — High-Level Test Generation for Pipelined Microprocessors
//!
//! Facade crate re-exporting the whole `hltg` workspace: a reproduction of
//! Van Campenhout, Mudge & Hayes, *"High-Level Test Generation for Design
//! Verification of Pipelined Microprocessors"* (DAC 1999).
//!
//! The workspace implements:
//!
//! * [`netlist`] — the structured processor model: word-level datapath,
//!   gate-level controller, primary/secondary/tertiary signal classes;
//! * [`sim`] — cycle-accurate simulation, dual good/bad simulation and
//!   error injection;
//! * [`isa`] — the 44-instruction DLX ISA, assembler and architectural
//!   reference simulator;
//! * [`dlx`] — the five-stage pipelined DLX test vehicle (stall, squash,
//!   bypass);
//! * [`errors`] — the bus single-stuck-line (bus SSL) design-error model;
//! * [`core`] — the three-part test generation algorithm: `DPTRACE` path
//!   selection, `DPRELAX` discrete relaxation and `CTRLJUST` controller
//!   justification, organized around the pipeframe model.
//!
//! # Quick start
//!
//! ```
//! use hltg::dlx::DlxDesign;
//! use hltg::errors::{BusSslError, Polarity};
//! use hltg::core::{TestGenerator, TgConfig};
//!
//! // Build the DLX test vehicle and pick a design error in the EX stage.
//! let design = DlxDesign::build();
//! let errors = hltg::errors::enumerate_stage_errors(
//!     &design.design,
//!     &[hltg::netlist::Stage::new(2)],
//!     hltg::errors::EnumPolicy::RepresentativePerBus,
//! );
//! let error: &BusSslError = &errors[0];
//! assert!(matches!(error.polarity, Polarity::StuckAt0 | Polarity::StuckAt1));
//!
//! // Generate a verification test for it.
//! let mut tg = TestGenerator::new(&design, TgConfig::default());
//! let outcome = tg.generate(error);
//! println!("{outcome:?}");
//! ```

pub use hltg_core as core;
pub use hltg_dlx as dlx;
pub use hltg_errors as errors;
pub use hltg_isa as isa;
pub use hltg_netlist as netlist;
pub use hltg_sim as sim;
