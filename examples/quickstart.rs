//! Quickstart: generate one verification test for a design error.
//!
//! Builds the DLX test vehicle, injects a bus single-stuck-line error on
//! the EX/MEM ALU bus, runs the three-part test generation algorithm, and
//! replays the generated program on a good/bad machine pair to show the
//! observable discrepancy.
//!
//! Run with: `cargo run --release --example quickstart`

use hltg::errors::{enumerate_stage_errors, EnumPolicy};
use hltg::prelude::*;
use hltg::sim::DualSim;

fn main() {
    // 1. The design under verification: a five-stage pipelined DLX.
    let model = DlxModel::new();
    println!(
        "DLX built: {} datapath modules, {} controller nets",
        model.design().dp.module_count(),
        model.design().ctl.net_count()
    );

    // 2. A synthetic design error: one line of the EX/MEM ALU bus stuck.
    let errors = enumerate_stage_errors(
        model.design(),
        &[Stage::new(2)],
        EnumPolicy::RepresentativePerBus,
    );
    let error = &errors[0];
    println!("target error: {error}");

    // 3. Generate a test: DPTRACE paths -> CTRLJUST instruction bits ->
    //    DPRELAX data values, confirmed by dual simulation.
    let mut tg = TestGenerator::new(&model, TgConfig::default());
    let Outcome::Detected(test) = tg.generate(error) else {
        println!("error aborted (unexpected for this bus)");
        return;
    };
    println!(
        "\ngenerated test ({} instructions, {} non-NOP, {} CTRLJUST backtracks):",
        test.length, test.core_len, test.backtracks
    );
    println!("{}", test.program.listing());
    if !test.dmem_image.is_empty() {
        println!("initial data-memory image:");
        for (addr, value) in &test.dmem_image {
            println!("  mem[{:#06x}] = {:#010x}", addr * 4, value);
        }
    }

    // 4. Independent confirmation: replay on a fresh good/bad pair.
    let pipe = model.pipeline();
    let mut dual =
        DualSim::new(model.design(), error.to_injection()).expect("dlx levelizes");
    dual.with_both(|m| {
        for &(addr, word) in &test.imem_image {
            m.preload_mem(pipe.imem, addr, u64::from(word));
        }
        for &(addr, value) in &test.dmem_image {
            m.preload_mem(pipe.dmem, addr, value);
        }
    });
    match dual.run(64) {
        Some(d) => println!(
            "\nconfirmed: observable discrepancy at cycle {} on `{}` (good {:#x}, bad {:#x})",
            d.cycle,
            model.design().dp.net(d.net).name,
            d.good,
            d.bad
        ),
        None => println!("\nunexpected: no discrepancy on replay"),
    }
}
