//! Custom datapath: the engines are not DLX-specific.
//!
//! Builds a small two-stage MAC-like datapath with its own controller,
//! enumerates bus SSL errors on it, and runs the generic engines directly:
//! `DPTRACE` path selection (with the Figure 5 C/O-state rules),
//! `CTRLJUST` on the unrolled controller, and `DPRELAX` discrete
//! relaxation with dual-simulation confirmation.
//!
//! Run with: `cargo run --release --example custom_datapath`

use hltg::core::ctrljust::{self, CtrlJustConfig, Objective};
use hltg::core::dprelax::{Activation, MemImage, RelaxEngine, RelaxGoal};
use hltg::core::dptrace::{self, DptraceConfig};
use hltg::core::pipeframe::SearchSpaceAnalysis;
use hltg::core::unroll::Unrolled;
use hltg::errors::{enumerate_all_errors, EnumPolicy, Polarity};
use hltg::netlist::ctl::CtlBuilder;
use hltg::netlist::dp::DpBuilder;
use hltg::netlist::{Design, Stage};
use hltg::core::SplitMix64;

/// A two-stage multiply-accumulate-ish unit: stage 0 adds or xors two
/// memory operands (controller-selected), stage 1 accumulates into a
/// register and writes the result out. The controller is commanded by a
/// word stream fetched from a command memory — the same closed-loop
/// structure as the DLX instruction fetch, so generated "tests" are
/// command programs.
fn build() -> Design {
    let mut dpb = DpBuilder::new("mac_dp");
    dpb.set_stage(Stage::new(0));
    let mem = dpb.arch_mem("operands", 16);
    let cmds = dpb.arch_mem("cmds", 16);
    // Command fetch: a free-running counter addresses the command memory.
    let counter = dpb.wire("counter", 16);
    let k1c = dpb.constant("k1c", 16, 1);
    let cnt_next = dpb.add("cnt_next", counter, k1c);
    dpb.drive(
        counter,
        "cnt_reg",
        hltg::netlist::dp::DpOp::Reg(hltg::netlist::dp::RegSpec::plain(0)),
        &[cnt_next],
        &[],
    );
    let _cmd = dpb.mem_read("cmd_fetch", cmds, counter);
    let k0 = dpb.constant("k0", 4, 0);
    let k1 = dpb.constant("k1", 4, 1);
    let x = dpb.mem_read("x", mem, k0);
    let y = dpb.mem_read("y", mem, k1);
    let sum = dpb.add("sum", x, y);
    let xor = dpb.xor("xor", x, y);
    let f = dpb.ctrl("f_sel");
    let stage0 = dpb.mux("stage0", &[f], &[sum, xor]);
    dpb.set_stage(Stage::new(1));
    let r = dpb.reg("pipe", stage0);
    let acc_en = dpb.ctrl("acc_en");
    let acc = dpb.wire("acc", 16);
    let next = dpb.add("next", acc, r);
    dpb.drive(
        acc,
        "acc_reg",
        hltg::netlist::dp::DpOp::Reg(hltg::netlist::dp::RegSpec {
            init: 0,
            has_enable: true,
            has_clear: false,
            clear_val: 0,
        }),
        &[next],
        &[acc_en],
    );
    dpb.mark_output(acc);
    let dp = dpb.finish().expect("valid datapath");

    let mut cb = CtlBuilder::new("mac_ctl");
    cb.set_stage(Stage::new(0));
    let mode = cb.cpi("mode");
    let go = cb.cpi("go");
    cb.set_stage(Stage::new(1));
    let go_q = cb.ff("go_q", go, false);
    cb.mark_ctrl_output(mode);
    cb.mark_ctrl_output(go_q);
    cb.mark_tertiary(go_q);
    let ctl = cb.finish().expect("valid controller");

    let mut design = Design::new("mac", dp, ctl);
    design.bind_ctrl("mode", "f_sel").expect("bind");
    design.bind_ctrl("go_q", "acc_en").expect("bind");
    design.bind_cpi("cmd_fetch.y", 0, "mode").expect("bind");
    design.bind_cpi("cmd_fetch.y", 1, "go").expect("bind");
    design.validate().expect("valid design");
    design
}

fn main() {
    let design = build();
    println!("design `{}` validates", design.name);
    let analysis = SearchSpaceAnalysis::of(&design.ctl);
    println!(
        "pipeframe analysis: n1={} state={} tertiary={} (justify {} -> {})",
        analysis.n1,
        analysis.n2_total,
        analysis.n3_total,
        analysis.timeframe.justify,
        analysis.pipeframe.justify
    );

    let errors = enumerate_all_errors(&design, EnumPolicy::RepresentativePerBus);
    println!("{} bus SSL errors enumerated", errors.len());

    // Target the stage-0 result bus.
    let error = errors
        .iter()
        .find(|e| e.net_name == "stage0.y" && e.polarity == Polarity::StuckAt0)
        .expect("stage0 bus enumerated");
    println!("target: {error}");

    // P1: paths.
    let plan = dptrace::select_paths(&design, error.net, 0, DptraceConfig::default())
        .expect("controllable and observable");
    println!(
        "DPTRACE: sink `{}` at t+{}, {} CTRL objectives",
        design.dp.net(plan.sink.net).name,
        plan.sink.time,
        plan.ctrl_objectives.len()
    );

    // P3: controller justification in a 6-frame window, activation at 2.
    let t = 2i32;
    let mut unrolled = Unrolled::new(&design.ctl, 6);
    let objectives: Vec<Objective> = plan
        .ctrl_objectives
        .iter()
        .map(|o| Objective {
            frame: (t + o.time) as usize,
            net: design.ctrl_source(o.dp_net).expect("bound"),
            value: o.value,
        })
        .collect();
    let just = ctrljust::justify(&mut unrolled, &objectives, &[], CtrlJustConfig::default())
        .expect("justifiable");
    println!(
        "CTRLJUST: {} decisions, {} backtracks",
        just.decisions, just.backtracks
    );

    // Translate the decided CPI bits into a command program.
    let mode = design.ctl.find_net("mode").expect("cpi exists");
    let go = design.ctl.find_net("go").expect("cpi exists");
    let mut cmd_words = Vec::new();
    for f in 0..unrolled.frames() {
        let bit = |v: hltg::sim::V3| u64::from(v.to_bool().unwrap_or(false));
        cmd_words.push((
            f as u64,
            bit(unrolled.assigned(f, mode)) | (bit(unrolled.assigned(f, go)) << 1),
        ));
    }

    // P2: values by discrete relaxation, confirmed by dual simulation.
    let operands = hltg::netlist::dp::ArchId(0);
    let cmds = hltg::netlist::dp::ArchId(1);
    let mut engine = RelaxEngine::new(
        &design,
        error.to_injection(),
        vec![
            (operands, MemImage::free()),
            (cmds, MemImage::fixed(cmd_words)),
        ],
    );
    let goal = RelaxGoal {
        activation: Activation {
            net: error.net,
            cycle: t as usize,
            bit: error.bit,
            want: true,
        },
        requirements: Vec::new(),
        horizon: 8,
    };
    let mut rng = SplitMix64::seed_from_u64(42);
    match engine.solve(&goal, &mut rng, 64) {
        Ok(sol) => {
            let (cycle, net) = sol.detected_at;
            println!(
                "DPRELAX: converged in {} iterations; discrepancy at cycle {cycle} on `{}`",
                sol.iterations,
                design.dp.net(net).name
            );
            println!(
                "operand image: x={:#x} y={:#x}",
                sol.images[0].1.value_of(0),
                sol.images[0].1.value_of(1)
            );
        }
        Err(e) => println!("DPRELAX failed: {e}"),
    }
}
