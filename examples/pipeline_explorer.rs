//! Pipeline explorer: watch hazards, forwarding and squashes happen.
//!
//! Assembles a hazard-dense program, runs it cycle by cycle on the
//! pipelined DLX, and prints the fetch stream together with the tertiary
//! control activity (stall, squash, bypass selects) — the signals the
//! paper identifies as the essence of instruction interaction. The final
//! architectural state is checked against the ISA reference simulator.
//!
//! Run with: `cargo run --release --example pipeline_explorer`

use hltg::dlx::DlxDesign;
use hltg::isa::asm::assemble;
use hltg::isa::ref_sim::ArchSim;
use hltg::isa::Reg;
use hltg::sim::Machine;

fn main() {
    let dlx = DlxDesign::build();
    let program = assemble(
        0,
        "
        addi r1, r0, 5      ; producer
        add  r2, r1, r1     ; EX/MEM bypass (distance 1)
        sw   r2, 0x40(r0)   ; store data needs the fresh r2
        lw   r3, 0x40(r0)
        add  r4, r3, r1     ; load-use: one stall cycle
        beqz r0, skip       ; taken branch: two squashed slots
        addi r5, r0, 99     ; wrong path
        addi r6, r0, 99     ; wrong path
    skip:
        sub  r7, r4, r2
        ",
    )
    .expect("valid assembly");
    println!("program:\n{}", program.listing());

    let mut machine = Machine::new(&dlx.design).expect("dlx levelizes");
    for (i, word) in program.encode().iter().enumerate() {
        machine.preload_mem(dlx.dp.imem, i as u64, u64::from(*word));
    }

    println!("cycle  pc      stall squash fwdA fwdB  (tertiary control activity)");
    for cycle in 0..24 {
        machine.step();
        let pc = machine.dp_value(dlx.dp.pc);
        let stall = machine.ctl_value(dlx.ctl.stall);
        let squash = machine.ctl_value(dlx.ctl.squash);
        let fwd_a = machine.ctl_value(dlx.ctl.c_fwd_a[0]) as u8
            + 2 * machine.ctl_value(dlx.ctl.c_fwd_a[1]) as u8;
        let fwd_b = machine.ctl_value(dlx.ctl.c_fwd_b[0]) as u8
            + 2 * machine.ctl_value(dlx.ctl.c_fwd_b[1]) as u8;
        let mut notes = Vec::new();
        if stall {
            notes.push("load-use interlock");
        }
        if squash {
            notes.push("taken transfer squashes IF/ID");
        }
        if fwd_a == 1 {
            notes.push("A <- EX/MEM bypass");
        }
        if fwd_a == 2 {
            notes.push("A <- MEM/WB bypass");
        }
        if fwd_b == 1 {
            notes.push("B <- EX/MEM bypass");
        }
        if fwd_b == 2 {
            notes.push("B <- MEM/WB bypass");
        }
        println!(
            "{cycle:>5}  {pc:#06x}  {:>5} {:>6} {fwd_a:>4} {fwd_b:>4}  {}",
            stall as u8,
            squash as u8,
            notes.join(", ")
        );
    }

    // Check the final state against the specification.
    let mut spec = ArchSim::new();
    spec.load_program(0, &program.encode());
    spec.run(16);
    println!("\nfinal state (pipeline vs ISA reference):");
    let mut all_ok = true;
    for r in 1..8u8 {
        let got = machine.read_reg(dlx.dp.gpr, r as u32);
        let want = u64::from(spec.reg(Reg(r)));
        let ok = got == want;
        all_ok &= ok;
        println!(
            "  r{r} = {got:#x} (spec {want:#x}) {}",
            if ok { "ok" } else { "MISMATCH" }
        );
    }
    println!("{}", if all_ok { "pipeline matches the ISA" } else { "BUG" });
}
