//! Error campaign: reproduce the paper's Table 1 workflow on a sample.
//!
//! Enumerates bus single-stuck-line errors in the EX/MEM/WB datapath
//! stages, runs test generation for each, and prints the Table 1
//! comparison. Pass a number to limit how many errors are attempted
//! (default 40; the full population takes under a minute in release).
//!
//! Run with: `cargo run --release --example error_campaign -- 144`

use hltg::prelude::*;

fn main() {
    let limit: Option<usize> = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .or(Some(40));
    let model = DlxModel::new();
    let config = CampaignConfig {
        limit,
        ..CampaignConfig::default()
    };
    println!(
        "running test generation for {} bus SSL errors in EX/MEM/WB...\n",
        limit.map(|l| l.to_string()).unwrap_or_else(|| "all".into())
    );
    let campaign = Campaign::run(&model, &config, RunOptions::default()).campaign;

    // A few sample outcomes.
    println!("sample outcomes:");
    for record in campaign.records.iter().take(6) {
        match &record.outcome {
            Outcome::Detected(tc) => println!(
                "  {}: detected, {} instructions ({} non-NOP), variant {}",
                record.error, tc.length, tc.core_len, tc.variant
            ),
            Outcome::Aborted { reason, .. } => println!(
                "  {}: aborted ({reason:?}{})",
                record.error,
                if record.redundant {
                    ", provably redundant"
                } else {
                    ""
                }
            ),
            Outcome::ProvenUntestable(proof) => println!(
                "  {}: proven untestable ({}, k={})",
                record.error,
                proof.kind.name(),
                proof.frames
            ),
        }
    }

    println!("\n{}", campaign.table1_report());
    let stats = campaign.stats();
    println!("\nsequence-length histogram (detected errors):");
    for (len, &count) in stats.length_histogram.iter().enumerate() {
        if count > 0 {
            println!("  {len:>3} instructions: {}", "#".repeat(count));
        }
    }
}
